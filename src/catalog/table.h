#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/schema.h"
#include "common/status.h"
#include "index/btree.h"
#include "storage/buffer_pool.h"

namespace elephant {

/// Per-column statistics gathered by Table::Analyze, consumed by the planner.
struct ColumnStats {
  uint64_t distinct = 0;
  uint64_t null_count = 0;
  Value min;
  Value max;
};

/// A secondary covering index: key = (key columns ++ clustering key) so
/// entries are unique, value = (clustering key bytes ++ included columns).
/// Scans produce rows over `out_schema` = key columns ++ include columns —
/// enough to answer covered queries without touching the base table.
struct SecondaryIndex {
  std::string name;
  std::string access_label;  ///< "index:<table>.<name>"; the tree points here
  std::vector<size_t> key_cols;      ///< base-schema positions of key columns
  std::vector<size_t> include_cols;  ///< base-schema positions of included columns
  Schema out_schema;                 ///< key cols then include cols
  Schema include_schema;             ///< include cols only (value payload layout)
  std::unique_ptr<BPlusTree> tree;
};

/// A clustered-index-organized table (the only organization the engine uses
/// for named tables, mirroring a row-store where every table has a primary
/// index). The clustering key is (cluster columns ++ u64 sequence number);
/// the sequence uniquifier makes every key distinct while preserving range
/// scans on the cluster-column prefix. Leaf values are full serialized rows.
class Table {
 public:
  /// `unique_cluster` declares the cluster-column combination unique: the
  /// 8-byte sequence uniquifier is then omitted from every clustered key
  /// (and from every secondary-index bookmark), saving per-row storage.
  /// The engine does not enforce the uniqueness; callers assert it.
  static Result<std::unique_ptr<Table>> Create(BufferPool* pool, std::string name,
                                               Schema schema,
                                               std::vector<size_t> cluster_cols,
                                               bool unique_cluster = false);

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  const std::vector<size_t>& cluster_cols() const { return cluster_cols_; }
  uint64_t row_count() const { return row_count_; }
  BufferPool* pool() const { return pool_; }
  const BPlusTree& clustered() const { return *clustered_; }

  /// Inserts one row, maintaining all secondary indexes.
  Status Insert(const Row& row);

  /// Bulk-loads rows into an empty table (sorts by clustering key first).
  /// Far faster than repeated Insert and produces sequentially laid-out
  /// leaves. Consumes `rows`.
  Status BulkLoadRows(std::vector<Row>&& rows);

  /// Deletes all rows whose cluster-column values equal `cluster_values`
  /// (prefix match). Returns the number of rows removed. Secondary indexes
  /// are maintained.
  Result<uint64_t> DeleteByClusterPrefix(const std::vector<Value>& cluster_values);

  /// Creates a covering secondary index over the current contents
  /// (bulk-built). Maintained by subsequent Insert calls.
  Status CreateSecondaryIndex(const std::string& index_name,
                              std::vector<size_t> key_cols,
                              std::vector<size_t> include_cols);

  const std::vector<std::unique_ptr<SecondaryIndex>>& secondary_indexes() const {
    return secondary_;
  }
  /// Finds a secondary index by name (nullptr if absent).
  SecondaryIndex* FindIndex(const std::string& index_name);
  /// Finds a secondary index whose leading key column is `col` and which
  /// covers all of `needed_cols` (nullptr if none).
  SecondaryIndex* FindCoveringIndex(size_t leading_col,
                                    const std::vector<size_t>& needed_cols);

  /// Encoded clustering-key prefix for the given cluster-column values
  /// (fewer values than cluster columns = shorter prefix).
  std::string EncodeClusterPrefix(const std::vector<Value>& values) const;

  /// Computes per-column statistics (full scan) and caches them.
  Status Analyze();
  const std::vector<ColumnStats>& stats() const { return stats_; }
  bool analyzed() const { return !stats_.empty(); }

  /// Pages in the clustered tree (on-disk footprint).
  Result<uint64_t> ClusteredPages() const { return clustered_->CountPages(); }

  /// Row iterator over the clustered index (full table, cluster-key order).
  class RowIterator {
   public:
    bool Valid() const { return it_.Valid() && InRange(); }
    Status Next() { return it_.Next(); }
    /// Deserializes the current row.
    Status Current(Row* out) const;
    /// Reads one column of the current row without full deserialization.
    Value CurrentColumn(size_t col) const;

   private:
    friend class Table;
    RowIterator(const Schema* schema, BPlusTree::Iterator it, std::string hi)
        : schema_(schema), it_(std::move(it)), hi_(std::move(hi)) {}
    bool InRange() const {
      return hi_.empty() || std::string_view(it_.key()) < std::string_view(hi_);
    }
    const Schema* schema_;
    BPlusTree::Iterator it_;
    std::string hi_;  ///< exclusive upper bound on encoded keys ("" = none)
  };

  /// Full-table scans walk every leaf in order, so they default to
  /// kSequentialScan: ring residency plus disk read-ahead.
  Result<RowIterator> ScanAll(
      AccessIntent intent = AccessIntent::kSequentialScan) const;
  /// Rows whose encoded clustering key is in [lo, hi) — "" bounds are open.
  /// Range width is the caller's knowledge, so `intent` defaults to point
  /// access; the planner passes kSequentialScan for unselective ranges.
  Result<RowIterator> ScanRange(
      const std::string& lo, const std::string& hi,
      AccessIntent intent = AccessIntent::kPointLookup) const;

 private:
  Table(BufferPool* pool, std::string name, Schema schema,
        std::vector<size_t> cluster_cols, bool unique_cluster)
      : pool_(pool),
        name_(std::move(name)),
        access_label_("table:" + name_),
        schema_(std::move(schema)),
        cluster_cols_(std::move(cluster_cols)),
        unique_cluster_(unique_cluster) {}

  std::string EncodeClusteredKey(const Row& row, uint64_t seq) const;
  /// Builds the entry for `idx` from a row and its full clustered key.
  Status MakeSecondaryEntry(const SecondaryIndex& idx, const Row& row,
                            const std::string& ckey, std::string* key,
                            std::string* value) const;

  BufferPool* pool_;
  std::string name_;
  /// Heatmap attribution label ("table:<name>"); the clustered tree (and its
  /// iterators) hold a pointer to this string, so it lives with the table.
  std::string access_label_;
  Schema schema_;
  std::vector<size_t> cluster_cols_;
  bool unique_cluster_ = false;
  std::unique_ptr<BPlusTree> clustered_;
  std::vector<std::unique_ptr<SecondaryIndex>> secondary_;
  uint64_t row_count_ = 0;
  uint64_t next_seq_ = 0;
  std::vector<ColumnStats> stats_;
};

/// Decodes the payload of a secondary-index entry.
struct SecondaryEntry {
  std::string clustered_key;   ///< full clustering key of the base row
  std::string include_bytes;   ///< serialized include-columns row
};
SecondaryEntry DecodeSecondaryValue(std::string_view value);

}  // namespace elephant
