#include "catalog/table.h"

#include <algorithm>
#include <set>

#include "wal/heap_ops.h"

namespace elephant {

namespace {

void AppendSeq(std::string* key, uint64_t seq) {
  for (int i = 7; i >= 0; i--) {
    key->push_back(static_cast<char>((seq >> (8 * i)) & 0xff));
  }
}

/// The trailing 8-byte big-endian sequence uniquifier of a clustering key.
uint64_t TrailingSeq(std::string_view ckey) {
  if (ckey.size() < 8) return 0;
  uint64_t v = 0;
  const char* p = ckey.data() + ckey.size() - 8;
  for (int i = 0; i < 8; i++) {
    v = (v << 8) | static_cast<unsigned char>(p[i]);
  }
  return v;
}

}  // namespace

SecondaryEntry DecodeSecondaryValue(std::string_view value) {
  SecondaryEntry e;
  const uint16_t cklen = static_cast<uint16_t>(
      static_cast<unsigned char>(value[0]) |
      (static_cast<unsigned char>(value[1]) << 8));
  e.clustered_key.assign(value.data() + 2, cklen);
  e.include_bytes.assign(value.data() + 2 + cklen, value.size() - 2 - cklen);
  return e;
}

Result<std::unique_ptr<Table>> Table::Create(BufferPool* pool, std::string name,
                                             Schema schema,
                                             std::vector<size_t> cluster_cols,
                                             bool unique_cluster) {
  for (size_t c : cluster_cols) {
    if (c >= schema.NumColumns()) {
      return Status::InvalidArgument("cluster column index out of range");
    }
  }
  if (cluster_cols.empty()) unique_cluster = false;  // seq is the whole key
  auto table = std::unique_ptr<Table>(
      new Table(pool, std::move(name), std::move(schema), std::move(cluster_cols),
                unique_cluster));
  ELE_ASSIGN_OR_RETURN(BPlusTree tree, BPlusTree::Create(pool));
  table->clustered_ = std::make_unique<BPlusTree>(tree);
  table->clustered_->SetAccessLabel(&table->access_label_);
  return table;
}

std::string Table::EncodeClusteredKey(const Row& row, uint64_t seq) const {
  std::string key = keycodec::EncodeKey(row, cluster_cols_);
  if (!unique_cluster_) AppendSeq(&key, seq);
  return key;
}

std::string Table::EncodeClusterPrefix(const std::vector<Value>& values) const {
  std::string key;
  for (const Value& v : values) keycodec::Encode(v, &key);
  return key;
}

Status Table::MakeSecondaryEntry(const SecondaryIndex& idx, const Row& row,
                                 const std::string& ckey, std::string* key,
                                 std::string* value) const {
  *key = keycodec::EncodeKey(row, idx.key_cols);
  key->append(ckey);
  value->clear();
  value->push_back(static_cast<char>(ckey.size() & 0xff));
  value->push_back(static_cast<char>((ckey.size() >> 8) & 0xff));
  value->append(ckey);
  Row include_row;
  include_row.reserve(idx.include_cols.size());
  for (size_t c : idx.include_cols) include_row.push_back(row[c]);
  return tuple::Serialize(idx.include_schema, include_row, value);
}

Status Table::Insert(const Row& row) {
  if (row.size() != schema_.NumColumns()) {
    return Status::InvalidArgument("insert arity mismatch on table " + name_);
  }
  const std::string ckey = EncodeClusteredKey(row, next_seq_++);
  std::string payload;
  ELE_RETURN_NOT_OK(tuple::Serialize(schema_, row, &payload));
  ELE_RETURN_NOT_OK(clustered_->Insert(ckey, payload));
  for (const auto& idx : secondary_) {
    std::string key, value;
    ELE_RETURN_NOT_OK(MakeSecondaryEntry(*idx, row, ckey, &key, &value));
    ELE_RETURN_NOT_OK(idx->tree->Insert(key, value));
  }
  row_count_++;
  return Status::OK();
}

Status Table::BulkLoadRows(std::vector<Row>&& rows) {
  obs::AccessScope access(&access_label_);
  if (row_count_ != 0) {
    return Status::InvalidArgument("bulk load into non-empty table " + name_);
  }
  // Pre-encode (key, payload) pairs, then sort by key. Sorting encoded keys
  // is equivalent to sorting by the cluster columns.
  std::vector<std::pair<std::string, std::string>> entries;
  entries.reserve(rows.size());
  for (Row& row : rows) {
    std::string key = EncodeClusteredKey(row, next_seq_++);
    std::string payload;
    ELE_RETURN_NOT_OK(tuple::Serialize(schema_, row, &payload));
    entries.emplace_back(std::move(key), std::move(payload));
    Row().swap(row);  // free as we go
  }
  rows.clear();
  rows.shrink_to_fit();
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  if (heap_ != nullptr) {
    // WAL mode: the heap is the durable store. Bulk loads write it directly
    // (unlogged, like COPY into a fresh table); the engine checkpoints after
    // the loading statement so the pages are flushed before any logged DML
    // can depend on them.
    for (const auto& [key, payload] : entries) {
      ELE_ASSIGN_OR_RETURN(Rid rid, heap_->Insert(PackHeapRecord(key, payload)));
      rid_map_[key] = rid;
    }
  }
  size_t i = 0;
  auto stream = [&](std::string* k, std::string* v) {
    if (i >= entries.size()) return false;
    *k = std::move(entries[i].first);
    *v = std::move(entries[i].second);
    i++;
    return true;
  };
  ELE_ASSIGN_OR_RETURN(BPlusTree tree, BPlusTree::BulkLoad(pool_, stream));
  *clustered_ = tree;
  clustered_->SetAccessLabel(&access_label_);
  row_count_ = entries.size();
  return Status::OK();
}

Status Table::ReloadRows(std::vector<Row>&& rows) {
  if (heap_ != nullptr) {
    return Status::FailedPrecondition(
        "table " + name_ + " has a WAL heap; its contents are owned by the "
        "log and cannot be reloaded");
  }
  ELE_ASSIGN_OR_RETURN(BPlusTree tree, BPlusTree::Create(pool_));
  clustered_ = std::make_unique<BPlusTree>(tree);
  clustered_->SetAccessLabel(&access_label_);
  row_count_ = 0;
  next_seq_ = 0;
  rid_map_.clear();
  stats_.clear();
  ELE_RETURN_NOT_OK(BulkLoadRows(std::move(rows)));
  for (const auto& idx : secondary_) {
    ELE_RETURN_NOT_OK(BuildSecondaryFromScan(idx.get()));
  }
  return Status::OK();
}

Result<uint64_t> Table::DeleteByClusterPrefix(
    const std::vector<Value>& cluster_values) {
  const std::string lo = EncodeClusterPrefix(cluster_values);
  const std::string hi = keycodec::PrefixUpperBound(lo);
  // Collect targets first (the iterator pins pages; mutate afterwards).
  std::vector<std::pair<std::string, Row>> victims;
  {
    ELE_ASSIGN_OR_RETURN(RowIterator it, ScanRange(lo, hi));
    while (it.Valid()) {
      Row row;
      ELE_RETURN_NOT_OK(it.Current(&row));
      victims.emplace_back(std::string(it.it_.key()), std::move(row));
      ELE_RETURN_NOT_OK(it.Next());
    }
  }
  for (auto& [ckey, row] : victims) {
    ELE_RETURN_NOT_OK(clustered_->Delete(ckey));
    for (const auto& idx : secondary_) {
      std::string key, value;
      ELE_RETURN_NOT_OK(MakeSecondaryEntry(*idx, row, ckey, &key, &value));
      ELE_RETURN_NOT_OK(idx->tree->Delete(key));
    }
    row_count_--;
  }
  return static_cast<uint64_t>(victims.size());
}

Status Table::CreateSecondaryIndex(const std::string& index_name,
                                   std::vector<size_t> key_cols,
                                   std::vector<size_t> include_cols) {
  if (FindIndex(index_name) != nullptr) {
    return Status::AlreadyExists("index " + index_name);
  }
  auto idx = std::make_unique<SecondaryIndex>();
  idx->name = index_name;
  idx->access_label = "index:" + name_ + "." + index_name;
  idx->key_cols = std::move(key_cols);
  idx->include_cols = std::move(include_cols);
  std::vector<Column> out_cols, inc_cols;
  for (size_t c : idx->key_cols) out_cols.push_back(schema_.ColumnAt(c));
  for (size_t c : idx->include_cols) {
    out_cols.push_back(schema_.ColumnAt(c));
    inc_cols.push_back(schema_.ColumnAt(c));
  }
  idx->out_schema = Schema(out_cols);
  idx->include_schema = Schema(inc_cols);
  ELE_RETURN_NOT_OK(BuildSecondaryFromScan(idx.get()));
  secondary_.push_back(std::move(idx));
  return Status::OK();
}

Status Table::BuildSecondaryFromScan(SecondaryIndex* idx) {
  // Build entries from a full scan, sort, bulk-load.
  std::vector<std::pair<std::string, std::string>> entries;
  entries.reserve(row_count_);
  {
    ELE_ASSIGN_OR_RETURN(RowIterator it, ScanAll());
    while (it.Valid()) {
      Row row;
      ELE_RETURN_NOT_OK(it.Current(&row));
      std::string key, value;
      ELE_RETURN_NOT_OK(
          MakeSecondaryEntry(*idx, row, std::string(it.it_.key()), &key, &value));
      entries.emplace_back(std::move(key), std::move(value));
      ELE_RETURN_NOT_OK(it.Next());
    }
  }
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  size_t i = 0;
  auto stream = [&](std::string* k, std::string* v) {
    if (i >= entries.size()) return false;
    *k = std::move(entries[i].first);
    *v = std::move(entries[i].second);
    i++;
    return true;
  };
  obs::AccessScope access(&idx->access_label);
  ELE_ASSIGN_OR_RETURN(BPlusTree tree, BPlusTree::BulkLoad(pool_, stream));
  idx->tree = std::make_unique<BPlusTree>(tree);
  idx->tree->SetAccessLabel(&idx->access_label);
  return Status::OK();
}

Status Table::SecondaryInsert(const Row& row, const std::string& ckey) {
  for (const auto& idx : secondary_) {
    std::string key, value;
    ELE_RETURN_NOT_OK(MakeSecondaryEntry(*idx, row, ckey, &key, &value));
    ELE_RETURN_NOT_OK(idx->tree->Insert(key, value));
  }
  return Status::OK();
}

Status Table::SecondaryDelete(const Row& row, const std::string& ckey) {
  for (const auto& idx : secondary_) {
    std::string key, value;
    ELE_RETURN_NOT_OK(MakeSecondaryEntry(*idx, row, ckey, &key, &value));
    ELE_RETURN_NOT_OK(idx->tree->Delete(key));
  }
  return Status::OK();
}

SecondaryIndex* Table::FindIndex(const std::string& index_name) {
  for (const auto& idx : secondary_) {
    if (idx->name == index_name) return idx.get();
  }
  return nullptr;
}

SecondaryIndex* Table::FindCoveringIndex(size_t leading_col,
                                         const std::vector<size_t>& needed_cols) {
  for (const auto& idx : secondary_) {
    if (idx->key_cols.empty() || idx->key_cols[0] != leading_col) continue;
    std::set<size_t> provided(idx->key_cols.begin(), idx->key_cols.end());
    provided.insert(idx->include_cols.begin(), idx->include_cols.end());
    bool covers = true;
    for (size_t c : needed_cols) {
      if (provided.count(c) == 0) {
        covers = false;
        break;
      }
    }
    if (covers) return idx.get();
  }
  return nullptr;
}

Status Table::RowIterator::Current(Row* out) const {
  std::string_view v = it_.value();
  return tuple::Deserialize(*schema_, v.data(), v.size(), out);
}

Value Table::RowIterator::CurrentColumn(size_t col) const {
  std::string_view v = it_.value();
  return tuple::GetValue(*schema_, v.data(), v.size(), col);
}

Result<Table::RowIterator> Table::ScanAll(AccessIntent intent) const {
  ELE_ASSIGN_OR_RETURN(BPlusTree::Iterator it, clustered_->SeekToFirst(intent));
  return RowIterator(&schema_, std::move(it), "");
}

Result<Table::RowIterator> Table::ScanRange(const std::string& lo,
                                            const std::string& hi,
                                            AccessIntent intent) const {
  BPlusTree::Iterator it;
  if (lo.empty()) {
    ELE_ASSIGN_OR_RETURN(it, clustered_->SeekToFirst(intent));
  } else {
    ELE_ASSIGN_OR_RETURN(it, clustered_->Seek(lo, intent));
  }
  return RowIterator(&schema_, std::move(it), hi);
}

void Table::AttachHeap(std::unique_ptr<TableHeap> heap, uint32_t table_id) {
  heap_ = std::move(heap);
  table_id_ = table_id;
}

std::string Table::PackHeapRecord(const std::string& ckey,
                                  const std::string& payload) {
  std::string rec;
  rec.reserve(2 + ckey.size() + payload.size());
  rec.push_back(static_cast<char>(ckey.size() & 0xff));
  rec.push_back(static_cast<char>((ckey.size() >> 8) & 0xff));
  rec.append(ckey);
  rec.append(payload);
  return rec;
}

Status Table::UnpackHeapRecord(std::string_view record, std::string* ckey,
                               std::string* payload) {
  if (record.size() < 2) return Status::Corruption("heap record too short");
  const size_t cklen = static_cast<unsigned char>(record[0]) |
                       (static_cast<unsigned char>(record[1]) << 8);
  if (2 + cklen > record.size()) {
    return Status::Corruption("heap record clustering key overruns record");
  }
  ckey->assign(record.data() + 2, cklen);
  payload->assign(record.data() + 2 + cklen, record.size() - 2 - cklen);
  return Status::OK();
}

Rid Table::RidFor(const std::string& ckey) const {
  auto it = rid_map_.find(ckey);
  return it != rid_map_.end() ? it->second : Rid{};
}

Status Table::InsertTxn(const Row& row, const TxnWriteContext& ctx) {
  if (heap_ == nullptr) {
    return Status::FailedPrecondition("table " + name_ + " has no WAL heap");
  }
  if (row.size() != schema_.NumColumns()) {
    return Status::InvalidArgument("insert arity mismatch on table " + name_);
  }
  obs::AccessScope access(&access_label_);
  const std::string ckey = EncodeClusteredKey(row, next_seq_++);
  std::string payload;
  ELE_RETURN_NOT_OK(tuple::Serialize(schema_, row, &payload));
  const wal::WalWriter w{ctx.log, ctx.txn_id, ctx.last_lsn};
  ELE_ASSIGN_OR_RETURN(
      Rid rid, wal::LoggedInsert(w, heap_.get(), table_id_,
                                 PackHeapRecord(ckey, payload)));
  ELE_RETURN_NOT_OK(clustered_->Insert(ckey, payload));
  ELE_RETURN_NOT_OK(SecondaryInsert(row, ckey));
  rid_map_[ckey] = rid;
  row_count_++;
  if (ctx.undo != nullptr) {
    ctx.undo->push_back(
        UndoEntry{UndoEntry::Kind::kInsert, this, ckey, rid, Row{}, row});
  }
  return Status::OK();
}

Status Table::DeleteRowTxn(const std::string& ckey, const Row& row,
                           const TxnWriteContext& ctx) {
  if (heap_ == nullptr) {
    return Status::FailedPrecondition("table " + name_ + " has no WAL heap");
  }
  obs::AccessScope access(&access_label_);
  auto rid_it = rid_map_.find(ckey);
  if (rid_it == rid_map_.end()) {
    return Status::NotFound("no heap address for row in table " + name_);
  }
  const Rid rid = rid_it->second;
  const wal::WalWriter w{ctx.log, ctx.txn_id, ctx.last_lsn};
  ELE_RETURN_NOT_OK(wal::LoggedDelete(w, pool_, table_id_, rid));
  ELE_RETURN_NOT_OK(clustered_->Delete(ckey));
  ELE_RETURN_NOT_OK(SecondaryDelete(row, ckey));
  rid_map_.erase(rid_it);
  row_count_--;
  if (ctx.undo != nullptr) {
    ctx.undo->push_back(
        UndoEntry{UndoEntry::Kind::kDelete, this, ckey, rid, row, Row{}});
  }
  return Status::OK();
}

Status Table::UpdateRowTxn(const std::string& ckey, const Row& before,
                           const Row& after, const TxnWriteContext& ctx) {
  if (heap_ == nullptr) {
    return Status::FailedPrecondition("table " + name_ + " has no WAL heap");
  }
  if (after.size() != schema_.NumColumns()) {
    return Status::InvalidArgument("update arity mismatch on table " + name_);
  }
  obs::AccessScope access(&access_label_);
  auto rid_it = rid_map_.find(ckey);
  if (rid_it == rid_map_.end()) {
    return Status::NotFound("no heap address for row in table " + name_);
  }
  const Rid old_rid = rid_it->second;
  std::string payload;
  ELE_RETURN_NOT_OK(tuple::Serialize(schema_, after, &payload));
  const std::string rec = PackHeapRecord(ckey, payload);
  const wal::WalWriter w{ctx.log, ctx.txn_id, ctx.last_lsn};
  ELE_ASSIGN_OR_RETURN(bool in_place,
                       wal::LoggedUpdate(w, pool_, table_id_, old_rid, rec));
  Rid new_rid = old_rid;
  if (!in_place) {
    // The new image outgrew the slot: logged delete + logged re-append.
    ELE_RETURN_NOT_OK(wal::LoggedDelete(w, pool_, table_id_, old_rid));
    ELE_ASSIGN_OR_RETURN(new_rid,
                         wal::LoggedInsert(w, heap_.get(), table_id_, rec));
  }
  ELE_RETURN_NOT_OK(clustered_->Update(ckey, payload));
  ELE_RETURN_NOT_OK(SecondaryDelete(before, ckey));
  ELE_RETURN_NOT_OK(SecondaryInsert(after, ckey));
  rid_map_[ckey] = new_rid;
  if (ctx.undo != nullptr) {
    ctx.undo->push_back(
        UndoEntry{UndoEntry::Kind::kUpdate, this, ckey, old_rid, before, after});
  }
  return Status::OK();
}

Status Table::UndoVolatile(const UndoEntry& e) {
  obs::AccessScope access(&access_label_);
  std::string payload;
  switch (e.kind) {
    case UndoEntry::Kind::kInsert:
      ELE_RETURN_NOT_OK(clustered_->Delete(e.ckey));
      ELE_RETURN_NOT_OK(SecondaryDelete(e.after, e.ckey));
      rid_map_.erase(e.ckey);
      row_count_--;
      return Status::OK();
    case UndoEntry::Kind::kDelete:
      ELE_RETURN_NOT_OK(tuple::Serialize(schema_, e.before, &payload));
      ELE_RETURN_NOT_OK(clustered_->Insert(e.ckey, payload));
      ELE_RETURN_NOT_OK(SecondaryInsert(e.before, e.ckey));
      rid_map_[e.ckey] = e.rid;
      row_count_++;
      return Status::OK();
    case UndoEntry::Kind::kUpdate:
      ELE_RETURN_NOT_OK(tuple::Serialize(schema_, e.before, &payload));
      ELE_RETURN_NOT_OK(clustered_->Update(e.ckey, payload));
      ELE_RETURN_NOT_OK(SecondaryDelete(e.after, e.ckey));
      ELE_RETURN_NOT_OK(SecondaryInsert(e.before, e.ckey));
      rid_map_[e.ckey] = e.rid;
      return Status::OK();
  }
  return Status::InvalidArgument("unknown undo entry kind");
}

Status Table::RebuildFromHeap() {
  if (heap_ == nullptr) {
    return Status::FailedPrecondition("table " + name_ + " has no WAL heap");
  }
  obs::AccessScope access(&access_label_);
  struct Ent {
    std::string ckey, payload;
    Rid rid;
  };
  std::vector<Ent> ents;
  ELE_ASSIGN_OR_RETURN(TableHeap::Iterator it, heap_->Begin());
  while (it.Valid()) {
    Ent e;
    ELE_RETURN_NOT_OK(UnpackHeapRecord(it.record(), &e.ckey, &e.payload));
    e.rid = it.rid();
    ents.push_back(std::move(e));
    ELE_RETURN_NOT_OK(it.Next());
  }
  std::sort(ents.begin(), ents.end(),
            [](const Ent& a, const Ent& b) { return a.ckey < b.ckey; });
  rid_map_.clear();
  uint64_t max_seq = 0;
  for (const Ent& e : ents) {
    rid_map_[e.ckey] = e.rid;
    if (!unique_cluster_) max_seq = std::max(max_seq, TrailingSeq(e.ckey) + 1);
  }
  size_t i = 0;
  auto stream = [&](std::string* k, std::string* v) {
    if (i >= ents.size()) return false;
    *k = ents[i].ckey;
    *v = std::move(ents[i].payload);
    i++;
    return true;
  };
  ELE_ASSIGN_OR_RETURN(BPlusTree tree, BPlusTree::BulkLoad(pool_, stream));
  *clustered_ = tree;
  clustered_->SetAccessLabel(&access_label_);
  row_count_ = ents.size();
  next_seq_ = unique_cluster_ ? ents.size() : max_seq;
  for (const auto& idx : secondary_) {
    ELE_RETURN_NOT_OK(BuildSecondaryFromScan(idx.get()));
  }
  stats_.clear();
  return Status::OK();
}

Status Table::Analyze() {
  std::vector<std::set<uint64_t>> distinct(schema_.NumColumns());
  std::vector<bool> seen(schema_.NumColumns(), false);
  stats_.assign(schema_.NumColumns(), ColumnStats{});
  ELE_ASSIGN_OR_RETURN(RowIterator it, ScanAll());
  while (it.Valid()) {
    Row row;
    ELE_RETURN_NOT_OK(it.Current(&row));
    for (size_t c = 0; c < row.size(); c++) {
      if (row[c].is_null()) {
        stats_[c].null_count++;
        continue;
      }
      distinct[c].insert(row[c].Hash());
      if (!seen[c] || row[c].Compare(stats_[c].min) < 0) stats_[c].min = row[c];
      if (!seen[c] || row[c].Compare(stats_[c].max) > 0) stats_[c].max = row[c];
      seen[c] = true;
    }
    ELE_RETURN_NOT_OK(it.Next());
  }
  for (size_t c = 0; c < schema_.NumColumns(); c++) {
    stats_[c].distinct = distinct[c].size();
  }
  return Status::OK();
}

}  // namespace elephant
