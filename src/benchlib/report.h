#pragma once

#include <string>
#include <vector>

namespace elephant {
namespace paper {

/// Minimal fixed-width table printer for benchmark reports.
class ReportTable {
 public:
  explicit ReportTable(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void AddRow(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

  /// Renders with a header rule, columns padded to content width.
  std::string ToString() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// "12.3 ms" / "4.56 s" style duration formatting.
std::string FormatSeconds(double seconds);

/// "26191x" style ratio formatting (two significant digits past 10x).
std::string FormatRatio(double ratio);

/// The paper's ratio notation: "4x^" when `a` is slower than `b` (ratio > 1),
/// "250x_" when faster, "=" when within 10%.
std::string FormatUpDown(double ratio);

/// Human-readable byte count ("1.5 MiB").
std::string FormatBytes(uint64_t bytes);

}  // namespace paper
}  // namespace elephant
