#include "benchlib/harness.h"

#include <algorithm>
#include <cstdlib>

#include "benchlib/telemetry.h"

namespace elephant {
namespace paper {

uint64_t ResultChecksum(const QueryResult& result) {
  std::vector<std::string> lines;
  lines.reserve(result.rows.size());
  for (const Row& row : result.rows) {
    std::string line;
    for (const Value& v : row) {
      // Normalize numeric renderings across types (int32 vs int64 etc.).
      if (v.is_null()) {
        line += "<null>|";
      } else if (IsNumeric(v.type()) && v.type() != TypeId::kDouble &&
                 v.type() != TypeId::kDecimal) {
        line += std::to_string(v.AsInt64()) + "|";
      } else {
        line += v.ToString() + "|";
      }
    }
    lines.push_back(std::move(line));
  }
  std::sort(lines.begin(), lines.end());
  uint64_t h = 1469598103934665603ull;
  for (const std::string& line : lines) {
    for (char c : line) {
      h ^= static_cast<unsigned char>(c);
      h *= 1099511628211ull;
    }
    h ^= '\n';
    h *= 1099511628211ull;
  }
  return h;
}

PaperBench::PaperBench(Options options) : options_(options) {
  DatabaseOptions db_options;
  db_options.buffer_pool_pages = options_.buffer_pool_pages;
  // ELEPHANT_NO_BATCH=1 pins every bench to the row-at-a-time Volcano
  // engine — the "before" leg of batch-vs-Volcano A/B measurements
  // (EXPERIMENTS.md). Result rows and checksums must not change.
  const char* no_batch = std::getenv("ELEPHANT_NO_BATCH");
  if (no_batch != nullptr && no_batch[0] != '\0' && no_batch[0] != '0') {
    db_options.batch_execution = false;
  }
  db_ = std::make_unique<Database>(db_options);
  views_ = std::make_unique<mv::ViewManager>(db_.get());
}

PaperBench::~PaperBench() {
  // The harness outlives main()'s Flush() call in no bench, so the metrics
  // scrape has to happen here, while the Database is still alive.
  if (db_ != nullptr) {
    BenchTelemetry::Instance().WriteMetricsText(db_->ExportMetrics());
    BenchTelemetry::Instance().WriteStatStatementsJson(
        db_->ExportStatStatements());
  }
}

Status PaperBench::Setup() {
  TpchConfig config;
  config.scale_factor = options_.scale_factor;
  TpchGenerator gen(config);
  ELE_RETURN_NOT_OK(gen.LoadInto(db_.get()));

  if (options_.build_ctables) {
    cstore::CTableBuilder builder(db_.get());
    for (const ProjectionDef& def : Projections()) {
      ELE_ASSIGN_OR_RETURN(ProjectionMeta meta, builder.Build(def));
      projections_.emplace(def.name, std::move(meta));
    }
  }
  if (options_.build_views) {
    for (const mv::ViewDef& def : Views()) {
      ELE_RETURN_NOT_OK(views_->CreateView(def));
    }
  }
  return Status::OK();
}

Result<Value> PaperBench::DateQuantile(const std::string& table,
                                       const std::string& column,
                                       double fraction) {
  ELE_ASSIGN_OR_RETURN(
      QueryResult r,
      db_->Execute("SELECT " + column + ", COUNT(*) FROM " + table +
                   " GROUP BY " + column + " ORDER BY " + column));
  uint64_t total = 0;
  for (const Row& row : r.rows) total += static_cast<uint64_t>(row[1].AsInt64());
  // Find D such that rows with column > D are ~fraction of the total.
  const uint64_t want_above = static_cast<uint64_t>(fraction * static_cast<double>(total));
  uint64_t above = 0;
  for (size_t i = r.rows.size(); i > 0; i--) {
    above += static_cast<uint64_t>(r.rows[i - 1][1].AsInt64());
    if (above >= want_above) return r.rows[i - 1][0];
  }
  if (r.rows.empty()) return Status::NotFound("empty table");
  return r.rows[0][0];
}

Result<Value> PaperBench::ShipdateForSelectivity(double fraction) {
  return DateQuantile("lineitem", "l_shipdate", fraction);
}

Result<Value> PaperBench::OrderdateForSelectivity(double fraction) {
  return DateQuantile("orders", "o_orderdate", fraction);
}

Result<StrategyResult> PaperBench::RunSql(const std::string& strategy,
                                          const std::string& sql) {
  // Run instrumented so the per-operator breakdown comes along with every
  // result. The wrappers add a little measured CPU per Next() call; the
  // paper's metric is modeled disk time, which is unaffected.
  db_->options().cold_cache = true;
  const auto heat_before = db_->heatmap().Snapshot();
  auto qr = db_->ExplainAnalyze(sql);
  db_->options().cold_cache = false;
  if (!qr.ok()) return qr.status();
  const QueryResult& result = qr.value().result;
  StrategyResult out;
  out.strategy = strategy;
  out.sql = sql;
  out.cpu_seconds = result.cpu_seconds;
  out.io_seconds = result.io_seconds;
  out.seconds = result.TotalSeconds();
  out.pages_sequential = result.io.sequential_reads;
  out.pages_random = result.io.random_reads;
  out.index_seeks = result.counters.index_seeks;
  out.rows = result.rows.size();
  out.checksum = ResultChecksum(result);
  if (result.plan != nullptr) out.operators = obs::FlattenPlan(*result.plan);
  out.heatmap = obs::HeatmapDelta(heat_before, db_->heatmap().Snapshot());
  return out;
}

Result<StrategyResult> PaperBench::RunRow(const AnalyticQuery& query) {
  return RunSql("Row", query.ToRowSql());
}

Result<StrategyResult> PaperBench::RunMv(const AnalyticQuery& query) {
  ELE_ASSIGN_OR_RETURN(std::string sql, views_->TryRewrite(query));
  return RunSql("Row(MV)", sql);
}

Result<StrategyResult> PaperBench::RunCol(const AnalyticQuery& query,
                                          const cstore::RewriteOptions& options) {
  const char* proj_name = ProjectionFor(query.name);
  auto it = projections_.find(proj_name);
  if (it == projections_.end()) {
    return Status::NotFound(std::string("projection ") + proj_name +
                            " not built");
  }
  cstore::Rewriter rewriter(it->second);
  cstore::RewriteOptions effective = options;
  // The paper tuned hints per query (§3 "Query hints"). We automate the same
  // choice: for unselective predicates over long c-table chains, per-run
  // index probes lose to f-ordered merge scans, so hint MERGE_JOIN there;
  // everywhere else LOOP_JOIN keeps the seeks cheap and minimal.
  const bool caller_defaults = options.range_collapse && options.use_hints &&
                               !options.force_merge_join;
  if (caller_defaults && !query.filters.empty()) {
    cstore::ColOptModel model(db_.get(), it->second);
    auto est = model.Estimate(query);
    if (est.ok()) {
      const size_t chain = query.ReferencedColumns().size();
      const bool collapse = rewriter.RangeCollapseApplies(query);
      // When the Figure 4(b) collapse applies, the whole chain degenerates
      // to range scans plus f-ordered probes, which beat full-scan merges at
      // every selectivity; only uncollapsible chains flip to MERGE when the
      // predicate is unselective.
      if (est.value().selectivity >= 0.4 && chain >= 2 && !collapse) {
        effective.force_merge_join = true;
      }
    }
  }
  ELE_ASSIGN_OR_RETURN(std::string sql, rewriter.Rewrite(query, effective));
  return RunSql("Row(Col)", sql);
}

Result<StrategyResult> PaperBench::RunColExact(
    const AnalyticQuery& query, const cstore::RewriteOptions& options) {
  const char* proj_name = ProjectionFor(query.name);
  auto it = projections_.find(proj_name);
  if (it == projections_.end()) {
    return Status::NotFound(std::string("projection ") + proj_name +
                            " not built");
  }
  cstore::Rewriter rewriter(it->second);
  ELE_ASSIGN_OR_RETURN(std::string sql, rewriter.Rewrite(query, options));
  return RunSql("Row(Col)", sql);
}

Result<StrategyResult> PaperBench::RunColOpt(const AnalyticQuery& query) {
  const char* proj_name = ProjectionFor(query.name);
  auto it = projections_.find(proj_name);
  if (it == projections_.end()) {
    return Status::NotFound(std::string("projection ") + proj_name +
                            " not built");
  }
  cstore::ColOptModel model(db_.get(), it->second);
  ELE_ASSIGN_OR_RETURN(cstore::ColOptEstimate est, model.Estimate(query));
  StrategyResult out;
  out.strategy = "ColOpt";
  out.seconds = est.seconds;
  out.io_seconds = est.seconds;
  out.pages_sequential = est.pages;
  return out;
}

}  // namespace paper
}  // namespace elephant
