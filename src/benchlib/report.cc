#include "benchlib/report.h"

#include <cstdio>

namespace elephant {
namespace paper {

std::string ReportTable::ToString() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); c++) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size() && c < widths.size(); c++) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&widths](const std::vector<std::string>& cells) {
    std::string line;
    for (size_t c = 0; c < cells.size(); c++) {
      if (c > 0) line += "  ";
      line += cells[c];
      line.append(widths[c] - cells[c].size(), ' ');
    }
    while (!line.empty() && line.back() == ' ') line.pop_back();
    return line + "\n";
  };
  std::string out = render_row(headers_);
  size_t total = 0;
  for (size_t c = 0; c < widths.size(); c++) total += widths[c] + (c > 0 ? 2 : 0);
  out.append(total, '-');
  out += "\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

std::string FormatSeconds(double seconds) {
  char buf[32];
  if (seconds < 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.1f us", seconds * 1e6);
  } else if (seconds < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.2f ms", seconds * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f s", seconds);
  }
  return buf;
}

std::string FormatRatio(double ratio) {
  char buf[32];
  if (ratio >= 100) {
    std::snprintf(buf, sizeof(buf), "%.0fx", ratio);
  } else if (ratio >= 10) {
    std::snprintf(buf, sizeof(buf), "%.1fx", ratio);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2fx", ratio);
  }
  return buf;
}

std::string FormatUpDown(double ratio) {
  if (ratio > 0.9 && ratio < 1.1) return "=";
  if (ratio >= 1.1) return FormatRatio(ratio) + "^";     // slower than baseline
  return FormatRatio(1.0 / ratio) + "_";                  // faster than baseline
}

std::string FormatBytes(uint64_t bytes) {
  char buf[32];
  if (bytes >= (1ull << 30)) {
    std::snprintf(buf, sizeof(buf), "%.2f GiB", static_cast<double>(bytes) / (1ull << 30));
  } else if (bytes >= (1ull << 20)) {
    std::snprintf(buf, sizeof(buf), "%.2f MiB", static_cast<double>(bytes) / (1ull << 20));
  } else if (bytes >= (1ull << 10)) {
    std::snprintf(buf, sizeof(buf), "%.1f KiB", static_cast<double>(bytes) / (1ull << 10));
  } else {
    std::snprintf(buf, sizeof(buf), "%llu B", static_cast<unsigned long long>(bytes));
  }
  return buf;
}

}  // namespace paper
}  // namespace elephant
