#pragma once

#include <vector>

#include "cstore/analytic_query.h"
#include "cstore/projection.h"
#include "mv/view.h"

namespace elephant {
namespace paper {

/// The experimental workload of the paper (Figure 1): seven aggregate
/// queries over TPC-H, each parameterized by a date D (Q7 by a flag). The
/// C-store schema under test (§1):
///
///   D1: (lineitem | l_shipdate, l_suppkey)
///   D2: (lineitem ⋈ orders | o_orderdate, l_suppkey)
///   D4: (lineitem ⋈ orders ⋈ customer | l_returnflag)
///
/// with the remaining columns appended to each sort order (footnote 4: all
/// columns participate in the sort).

/// Projection definitions D1, D2 and D4 with full column lists.
std::vector<ProjectionDef> Projections();

/// Name of the projection each query runs against ("d1", "d2" or "d4").
const char* ProjectionFor(const std::string& query_name);

AnalyticQuery Q1(const Value& d);  ///< count items shipped each day after D
AnalyticQuery Q2(const Value& d);  ///< count per supplier shipped on day D
AnalyticQuery Q3(const Value& d);  ///< count per supplier shipped after D
AnalyticQuery Q4(const Value& d);  ///< latest shipdate per orderdate after D
AnalyticQuery Q5(const Value& d);  ///< latest shipdate per supplier, order day D
AnalyticQuery Q6(const Value& d);  ///< latest shipdate per supplier, order after D
AnalyticQuery Q7();                ///< lost revenue per nation for returned parts

/// Builds the query by name ("Q1".."Q7"); `d` ignored for Q7.
AnalyticQuery QueryByName(const std::string& name, const Value& d);

/// The generalized materialized views of §2.1: each answers a whole family
/// of parameterized instances.
///
///   MV1   = l_shipdate -> COUNT(*)                  (answers Q1)
///   MV23  = l_shipdate, l_suppkey -> COUNT(*)       (answers Q1, Q2, Q3)
///   MV4   = o_orderdate -> MAX(l_shipdate)          (answers Q4)
///   MV56  = o_orderdate, l_suppkey -> MAX(l_shipdate)  (answers Q5, Q6)
///   MV7   = l_returnflag, c_nationkey -> SUM(l_extendedprice)  (answers Q7)
std::vector<mv::ViewDef> Views();

}  // namespace paper
}  // namespace elephant
