#pragma once

#include <map>
#include <string>
#include <vector>

#include "benchlib/harness.h"
#include "obs/json.h"

namespace elephant {
namespace paper {

/// Structured telemetry sink for the bench binaries. Every bench accepts
/// `--json <path>`; when given, one JSON document is written there at exit:
///
///   {
///     "bench": "<binary name>",
///     "schema_version": 2,
///     "records": [
///       {"type": "strategy", "labels": {...}, "strategy": "Row(Col)",
///        "seconds": ..., "io_seconds": ..., "cpu_seconds": ...,
///        "pages_sequential": ..., "pages_random": ..., "index_seeks": ...,
///        "rows": ..., "checksum": "<hex>",
///        "operators": [{"op": ..., "depth": ..., "rows": ...,
///                       "seconds": ..., "seq_reads": ..., "rand_reads": ...,
///                       "pool_misses": ..., "est_rows": ...}, ...],
///        "heatmap": {"table:lineitem": {"pool_hits": ..., "pool_faults": ...,
///                    "sequential_reads": ..., "random_reads": ...,
///                    "page_writes": ...}, ...}},
///       {"type": "metrics", "labels": {...}, "values": {...}}
///     ]
///   }
///
/// Three more flags ride along for the engine-lifetime telemetry:
///   `--trace <path>`    enable the process-wide obs::TraceLog and write a
///                       Chrome trace_event JSON there at Flush().
///   `--metrics <path>`  dump the engine's Prometheus text exposition there
///                       when the bench's PaperBench is torn down.
///   `--stat-statements <path>`  dump Database::ExportStatStatements() JSON
///                       there at the same teardown point.
///
/// Records accumulate in memory (benches are short); without --json the sink
/// is a no-op. Single-threaded, like the benches.
class BenchTelemetry {
 public:
  static BenchTelemetry& Instance();

  /// Reads `--json <path>`, `--trace <path>`, `--metrics <path>` and
  /// `--stat-statements <path>` from argv (consuming the tokens;
  /// `--flag=<path>` also accepted) and remembers the bench name. Enables
  /// the global TraceLog when --trace is present. Call first thing in
  /// main().
  void Configure(std::string bench_name, int* argc, char** argv);

  bool enabled() const { return !path_.empty(); }
  const std::string& path() const { return path_; }
  const std::string& trace_path() const { return trace_path_; }
  const std::string& metrics_path() const { return metrics_path_; }
  const std::string& stat_statements_path() const {
    return stat_statements_path_;
  }

  /// One strategy execution, with free-form dimension labels
  /// ("query": "Q3", "selectivity": "0.1", ...).
  void RecordStrategy(const std::map<std::string, std::string>& labels,
                      const StrategyResult& result);

  /// One free-form numeric record (storage sizes, build times, ...).
  void RecordMetrics(const std::map<std::string, std::string>& labels,
                     const std::map<std::string, double>& values);

  /// Writes the engine metrics text (Prometheus exposition) captured by the
  /// bench harness at teardown. PaperBench calls this from its destructor;
  /// no-op unless --metrics was given.
  bool WriteMetricsText(const std::string& text);

  /// Writes the statement-registry JSON (Database::ExportStatStatements())
  /// captured at the same teardown point; no-op unless --stat-statements
  /// was given.
  bool WriteStatStatementsJson(const std::string& json);

  /// Writes the document to `path` (no-op when disabled) and, when --trace
  /// was given, the Chrome trace to `trace_path`. Returns false on I/O
  /// failure. Safe to call multiple times; the files are rewritten whole.
  bool Flush();

 private:
  std::string bench_name_;
  std::string path_;
  std::string trace_path_;
  std::string metrics_path_;
  std::string stat_statements_path_;
  std::vector<std::string> records_;  ///< pre-serialized JSON objects
};

}  // namespace paper
}  // namespace elephant
