#pragma once

#include <map>
#include <string>
#include <vector>

#include "benchlib/harness.h"
#include "obs/json.h"

namespace elephant {
namespace paper {

/// Structured telemetry sink for the bench binaries. Every bench accepts
/// `--json <path>`; when given, one JSON document is written there at exit:
///
///   {
///     "bench": "<binary name>",
///     "schema_version": 1,
///     "records": [
///       {"type": "strategy", "labels": {...}, "strategy": "Row(Col)",
///        "seconds": ..., "io_seconds": ..., "cpu_seconds": ...,
///        "pages_sequential": ..., "pages_random": ..., "index_seeks": ...,
///        "rows": ..., "checksum": "<hex>",
///        "operators": [{"op": ..., "depth": ..., "rows": ...,
///                       "seconds": ..., "seq_reads": ..., "rand_reads": ...,
///                       "pool_misses": ..., "est_rows": ...}, ...]},
///       {"type": "metrics", "labels": {...}, "values": {...}}
///     ]
///   }
///
/// Records accumulate in memory (benches are short); without --json the sink
/// is a no-op. Single-threaded, like the benches.
class BenchTelemetry {
 public:
  static BenchTelemetry& Instance();

  /// Reads `--json <path>` from argv (consuming both tokens) and remembers
  /// the bench name. Call first thing in main().
  void Configure(std::string bench_name, int* argc, char** argv);

  bool enabled() const { return !path_.empty(); }
  const std::string& path() const { return path_; }

  /// One strategy execution, with free-form dimension labels
  /// ("query": "Q3", "selectivity": "0.1", ...).
  void RecordStrategy(const std::map<std::string, std::string>& labels,
                      const StrategyResult& result);

  /// One free-form numeric record (storage sizes, build times, ...).
  void RecordMetrics(const std::map<std::string, std::string>& labels,
                     const std::map<std::string, double>& values);

  /// Writes the document to `path` (no-op when disabled). Returns false on
  /// I/O failure. Safe to call multiple times; the file is rewritten whole.
  bool Flush();

 private:
  std::string bench_name_;
  std::string path_;
  std::vector<std::string> records_;  ///< pre-serialized JSON objects
};

}  // namespace paper
}  // namespace elephant
