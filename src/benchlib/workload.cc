#include "benchlib/workload.h"

namespace elephant {
namespace paper {

namespace {

/// Join conditions used throughout the workload (TPC-H foreign keys).
std::pair<std::string, std::string> LineitemOrders() {
  return {"l_orderkey", "o_orderkey"};
}
std::pair<std::string, std::string> OrdersCustomer() {
  return {"o_custkey", "c_custkey"};
}

}  // namespace

std::vector<ProjectionDef> Projections() {
  std::vector<ProjectionDef> defs;
  // D1: lineitem sorted by (l_shipdate, l_suppkey, <rest>).
  defs.push_back(ProjectionDef{
      "d1",
      "SELECT l_shipdate, l_suppkey, l_orderkey, l_linenumber, l_quantity, "
      "l_extendedprice, l_discount, l_tax, l_returnflag, l_linestatus, "
      "l_commitdate, l_receiptdate, l_shipinstruct, l_shipmode FROM lineitem",
      {"l_shipdate", "l_suppkey", "l_orderkey", "l_linenumber", "l_quantity",
       "l_extendedprice", "l_discount", "l_tax", "l_returnflag", "l_linestatus",
       "l_commitdate", "l_receiptdate", "l_shipinstruct", "l_shipmode"}});
  // D2: lineitem ⋈ orders sorted by (o_orderdate, l_suppkey, l_shipdate, <rest>).
  defs.push_back(ProjectionDef{
      "d2",
      "SELECT o_orderdate, l_suppkey, l_shipdate, l_orderkey, l_linenumber, "
      "l_quantity, l_extendedprice, l_returnflag, o_custkey, o_orderstatus, "
      "o_totalprice, o_orderpriority "
      "FROM lineitem, orders WHERE l_orderkey = o_orderkey",
      {"o_orderdate", "l_suppkey", "l_shipdate", "l_orderkey", "l_linenumber",
       "l_quantity", "l_extendedprice", "l_returnflag", "o_custkey",
       "o_orderstatus", "o_totalprice", "o_orderpriority"}});
  // D4: lineitem ⋈ orders ⋈ customer sorted by
  //     (l_returnflag, c_nationkey, l_extendedprice, <rest>).
  defs.push_back(ProjectionDef{
      "d4",
      "SELECT l_returnflag, c_nationkey, l_extendedprice, l_orderkey, "
      "l_linenumber, l_suppkey, l_shipdate, o_orderdate, o_custkey, "
      "c_acctbal, c_mktsegment "
      "FROM lineitem, orders, customer "
      "WHERE l_orderkey = o_orderkey AND o_custkey = c_custkey",
      {"l_returnflag", "c_nationkey", "l_extendedprice", "l_orderkey",
       "l_linenumber", "l_suppkey", "l_shipdate", "o_orderdate", "o_custkey",
       "c_acctbal", "c_mktsegment"}});
  return defs;
}

const char* ProjectionFor(const std::string& query_name) {
  if (query_name == "Q1" || query_name == "Q2" || query_name == "Q3") return "d1";
  if (query_name == "Q4" || query_name == "Q5" || query_name == "Q6") return "d2";
  return "d4";
}

AnalyticQuery Q1(const Value& d) {
  AnalyticQuery q;
  q.name = "Q1";
  q.tables = {"lineitem"};
  q.filters = {{"l_shipdate", CompareOp::kGt, d}};
  q.group_cols = {"l_shipdate"};
  q.aggs = {{AggFunc::kCountStar, "", "cnt"}};
  return q;
}

AnalyticQuery Q2(const Value& d) {
  AnalyticQuery q;
  q.name = "Q2";
  q.tables = {"lineitem"};
  q.filters = {{"l_shipdate", CompareOp::kEq, d}};
  q.group_cols = {"l_suppkey"};
  q.aggs = {{AggFunc::kCountStar, "", "cnt"}};
  return q;
}

AnalyticQuery Q3(const Value& d) {
  AnalyticQuery q;
  q.name = "Q3";
  q.tables = {"lineitem"};
  q.filters = {{"l_shipdate", CompareOp::kGt, d}};
  q.group_cols = {"l_suppkey"};
  q.aggs = {{AggFunc::kCountStar, "", "cnt"}};
  return q;
}

AnalyticQuery Q4(const Value& d) {
  AnalyticQuery q;
  q.name = "Q4";
  q.tables = {"lineitem", "orders"};
  q.join_conds = {LineitemOrders()};
  q.filters = {{"o_orderdate", CompareOp::kGt, d}};
  q.group_cols = {"o_orderdate"};
  q.aggs = {{AggFunc::kMax, "l_shipdate", "latest"}};
  return q;
}

AnalyticQuery Q5(const Value& d) {
  AnalyticQuery q;
  q.name = "Q5";
  q.tables = {"lineitem", "orders"};
  q.join_conds = {LineitemOrders()};
  q.filters = {{"o_orderdate", CompareOp::kEq, d}};
  q.group_cols = {"l_suppkey"};
  q.aggs = {{AggFunc::kMax, "l_shipdate", "latest"}};
  return q;
}

AnalyticQuery Q6(const Value& d) {
  AnalyticQuery q;
  q.name = "Q6";
  q.tables = {"lineitem", "orders"};
  q.join_conds = {LineitemOrders()};
  q.filters = {{"o_orderdate", CompareOp::kGt, d}};
  q.group_cols = {"l_suppkey"};
  q.aggs = {{AggFunc::kMax, "l_shipdate", "latest"}};
  return q;
}

AnalyticQuery Q7() {
  AnalyticQuery q;
  q.name = "Q7";
  q.tables = {"lineitem", "orders", "customer"};
  q.join_conds = {LineitemOrders(), OrdersCustomer()};
  q.filters = {{"l_returnflag", CompareOp::kEq, Value::Char("R")}};
  q.group_cols = {"c_nationkey"};
  q.aggs = {{AggFunc::kSum, "l_extendedprice", "lost_revenue"}};
  return q;
}

AnalyticQuery QueryByName(const std::string& name, const Value& d) {
  if (name == "Q1") return Q1(d);
  if (name == "Q2") return Q2(d);
  if (name == "Q3") return Q3(d);
  if (name == "Q4") return Q4(d);
  if (name == "Q5") return Q5(d);
  if (name == "Q6") return Q6(d);
  return Q7();
}

std::vector<mv::ViewDef> Views() {
  std::vector<mv::ViewDef> defs;
  {
    mv::ViewDef v;
    v.name = "mv1";
    v.tables = {"lineitem"};
    v.group_cols = {"l_shipdate"};
    v.aggs = {{AggFunc::kCountStar, "", "cnt"}};
    defs.push_back(std::move(v));
  }
  {
    mv::ViewDef v;  // the paper's MV2,3
    v.name = "mv23";
    v.tables = {"lineitem"};
    v.group_cols = {"l_shipdate", "l_suppkey"};
    v.aggs = {{AggFunc::kCountStar, "", "cnt"}};
    defs.push_back(std::move(v));
  }
  {
    mv::ViewDef v;
    v.name = "mv4";
    v.tables = {"lineitem", "orders"};
    v.join_conds = {LineitemOrders()};
    v.group_cols = {"o_orderdate"};
    v.aggs = {{AggFunc::kMax, "l_shipdate", "latest"}};
    defs.push_back(std::move(v));
  }
  {
    mv::ViewDef v;  // answers both Q5 and Q6
    v.name = "mv56";
    v.tables = {"lineitem", "orders"};
    v.join_conds = {LineitemOrders()};
    v.group_cols = {"o_orderdate", "l_suppkey"};
    v.aggs = {{AggFunc::kMax, "l_shipdate", "latest"}};
    defs.push_back(std::move(v));
  }
  {
    mv::ViewDef v;  // the paper's MV7
    v.name = "mv7";
    v.tables = {"lineitem", "orders", "customer"};
    v.join_conds = {LineitemOrders(), OrdersCustomer()};
    v.group_cols = {"l_returnflag", "c_nationkey"};
    v.aggs = {{AggFunc::kSum, "l_extendedprice", "lost_revenue"}};
    defs.push_back(std::move(v));
  }
  return defs;
}

}  // namespace paper
}  // namespace elephant
