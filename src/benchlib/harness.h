#pragma once

#include <map>
#include <memory>
#include <string>

#include "benchlib/workload.h"
#include "cstore/colopt.h"
#include "cstore/ctable_builder.h"
#include "cstore/rewriter.h"
#include "engine/database.h"
#include "mv/view.h"
#include "obs/heatmap.h"
#include "obs/plan_stats.h"
#include "tpch/tpch.h"

namespace elephant {
namespace paper {

/// Result of running one strategy for one query instance.
struct StrategyResult {
  std::string strategy;     ///< "Row", "Row(MV)", "Row(Col)", "ColOpt"
  std::string sql;          ///< the SQL actually executed ("" for ColOpt)
  double seconds = 0;       ///< modeled disk time + measured CPU time
  double io_seconds = 0;
  double cpu_seconds = 0;
  uint64_t pages_sequential = 0;
  uint64_t pages_random = 0;
  uint64_t index_seeks = 0;  ///< the paper's "context switches"
  uint64_t rows = 0;
  /// Checksum over the result rows (order-insensitive) for cross-strategy
  /// result validation — all strategies must agree.
  uint64_t checksum = 0;
  /// Per-operator self-attributed breakdown (pre-order; empty for modeled
  /// strategies like ColOpt). Page counts sum to pages_sequential/_random.
  std::vector<obs::OperatorBreakdown> operators;
  /// Per-object page-access delta for this execution (table/index/c-table →
  /// hits, faults, reads, writes), from the engine's AccessHeatmap. Empty
  /// for modeled strategies.
  std::map<std::string, obs::ObjectIoStats> heatmap;
};

/// The full experimental rig of the paper: TPC-H data, the D1/D2/D4
/// projections as c-tables, the generalized materialized views, the ColOpt
/// model, and runners for every strategy. Queries run cold-cache (the pool
/// is dropped before each timed execution), matching the paper's setup.
class PaperBench {
 public:
  struct Options {
    double scale_factor = 0.05;
    bool build_ctables = true;
    bool build_views = true;
    uint32_t buffer_pool_pages = kDefaultBufferPoolPages;
  };

  explicit PaperBench(Options options);

  /// Dumps the engine's Prometheus metrics to the path given by the bench's
  /// `--metrics` flag (if any) before the Database goes away.
  ~PaperBench();

  /// Loads TPC-H and builds projections/views. Call once.
  Status Setup();

  Database& db() { return *db_; }
  mv::ViewManager& views() { return *views_; }
  const ProjectionMeta& projection(const std::string& name) const {
    return projections_.at(name);
  }
  bool has_projection(const std::string& name) const {
    return projections_.count(name) != 0;
  }

  /// Date D such that `l_shipdate > D` selects ~`fraction` of lineitem.
  Result<Value> ShipdateForSelectivity(double fraction);
  /// Date D such that `o_orderdate > D` selects ~`fraction` of orders.
  Result<Value> OrderdateForSelectivity(double fraction);
  /// A shipdate near the middle of the range (for Q2's equality predicate).
  Result<Value> MedianShipdate() { return ShipdateForSelectivity(0.5); }
  /// An orderdate near the middle of the range (for Q5's equality predicate).
  Result<Value> MedianOrderdate() { return OrderdateForSelectivity(0.5); }

  /// `Row`: the query directly over base tables (primary indexes only).
  Result<StrategyResult> RunRow(const AnalyticQuery& query);

  /// `Row(MV)`: via the best matching materialized view (NotFound when no
  /// view matches — the generality limitation of §2.1).
  Result<StrategyResult> RunMv(const AnalyticQuery& query);

  /// `Row(Col)`: via the mechanical c-table rewrite on the query's
  /// projection. With default options the harness also auto-tunes the join
  /// hint per selectivity (the paper's manual per-query hints, §3).
  Result<StrategyResult> RunCol(const AnalyticQuery& query,
                                const cstore::RewriteOptions& options = {});

  /// `Row(Col)` with the given options taken literally (no hint auto-tune) —
  /// for ablation experiments.
  Result<StrategyResult> RunColExact(const AnalyticQuery& query,
                                     const cstore::RewriteOptions& options);

  /// `ColOpt`: the modeled lower bound (no execution).
  Result<StrategyResult> RunColOpt(const AnalyticQuery& query);

 private:
  Result<StrategyResult> RunSql(const std::string& strategy,
                                const std::string& sql);
  /// Cumulative-distribution quantile of a date column via GROUP BY.
  Result<Value> DateQuantile(const std::string& table, const std::string& column,
                             double fraction);

  Options options_;
  std::unique_ptr<Database> db_;
  std::unique_ptr<mv::ViewManager> views_;
  std::map<std::string, ProjectionMeta> projections_;
};

/// Order-insensitive checksum of a result set (sorted row renderings hashed).
uint64_t ResultChecksum(const QueryResult& result);

}  // namespace paper
}  // namespace elephant
