#include "benchlib/telemetry.h"

#include <cstdio>
#include <cstring>

namespace elephant {
namespace paper {

namespace {

void AppendLabels(const std::map<std::string, std::string>& labels,
                  obs::JsonWriter* w) {
  w->Key("labels").BeginObject();
  for (const auto& [k, v] : labels) w->Key(k).String(v);
  w->EndObject();
}

std::string ChecksumHex(uint64_t checksum) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(checksum));
  return buf;
}

}  // namespace

BenchTelemetry& BenchTelemetry::Instance() {
  static BenchTelemetry instance;
  return instance;
}

void BenchTelemetry::Configure(std::string bench_name, int* argc, char** argv) {
  bench_name_ = std::move(bench_name);
  for (int i = 1; i < *argc; i++) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < *argc) {
      path_ = argv[i + 1];
      for (int j = i; j + 2 < *argc; j++) argv[j] = argv[j + 2];
      *argc -= 2;
      return;
    }
    constexpr const char* kPrefix = "--json=";
    if (std::strncmp(argv[i], kPrefix, std::strlen(kPrefix)) == 0) {
      path_ = argv[i] + std::strlen(kPrefix);
      for (int j = i; j + 1 < *argc; j++) argv[j] = argv[j + 1];
      *argc -= 1;
      return;
    }
  }
}

void BenchTelemetry::RecordStrategy(
    const std::map<std::string, std::string>& labels,
    const StrategyResult& result) {
  if (!enabled()) return;
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("type").String("strategy");
  AppendLabels(labels, &w);
  w.Key("strategy").String(result.strategy);
  w.Key("sql").String(result.sql);
  w.Key("seconds").Double(result.seconds);
  w.Key("io_seconds").Double(result.io_seconds);
  w.Key("cpu_seconds").Double(result.cpu_seconds);
  w.Key("pages_sequential").UInt(result.pages_sequential);
  w.Key("pages_random").UInt(result.pages_random);
  w.Key("index_seeks").UInt(result.index_seeks);
  w.Key("rows").UInt(result.rows);
  w.Key("checksum").String(ChecksumHex(result.checksum));
  w.Key("operators").BeginArray();
  for (const obs::OperatorBreakdown& op : result.operators) {
    w.BeginObject();
    w.Key("op").String(op.op);
    w.Key("depth").Int(op.depth);
    w.Key("rows").UInt(op.rows);
    w.Key("next_calls").UInt(op.next_calls);
    w.Key("seconds").Double(op.seconds);
    w.Key("seq_reads").UInt(op.seq_reads);
    w.Key("rand_reads").UInt(op.rand_reads);
    w.Key("page_writes").UInt(op.page_writes);
    w.Key("pool_hits").UInt(op.pool_hits);
    w.Key("pool_misses").UInt(op.pool_misses);
    if (op.est_rows >= 0) w.Key("est_rows").Double(op.est_rows);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  records_.push_back(std::move(w).str());
}

void BenchTelemetry::RecordMetrics(
    const std::map<std::string, std::string>& labels,
    const std::map<std::string, double>& values) {
  if (!enabled()) return;
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("type").String("metrics");
  AppendLabels(labels, &w);
  w.Key("values").BeginObject();
  for (const auto& [k, v] : values) w.Key(k).Double(v);
  w.EndObject();
  w.EndObject();
  records_.push_back(std::move(w).str());
}

bool BenchTelemetry::Flush() {
  if (!enabled()) return true;
  std::FILE* f = std::fopen(path_.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "telemetry: cannot open %s\n", path_.c_str());
    return false;
  }
  obs::JsonWriter head;
  head.BeginObject();
  head.Key("bench").String(bench_name_);
  head.Key("schema_version").Int(1);
  const std::string& prefix = head.str();
  std::fputs(prefix.c_str(), f);
  // Splice the records array into the open object by hand: the records are
  // already serialized.
  std::fputs(",\"records\":[", f);
  for (size_t i = 0; i < records_.size(); i++) {
    if (i > 0) std::fputc(',', f);
    std::fputs(records_[i].c_str(), f);
  }
  std::fputs("]}", f);
  std::fputc('\n', f);
  const bool ok = std::fclose(f) == 0;
  return ok;
}

}  // namespace paper
}  // namespace elephant
