#include "benchlib/telemetry.h"

#include <cstdio>
#include <cstring>

#include "obs/trace_log.h"

namespace elephant {
namespace paper {

namespace {

void AppendLabels(const std::map<std::string, std::string>& labels,
                  obs::JsonWriter* w) {
  w->Key("labels").BeginObject();
  for (const auto& [k, v] : labels) w->Key(k).String(v);
  w->EndObject();
}

std::string ChecksumHex(uint64_t checksum) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(checksum));
  return buf;
}

}  // namespace

BenchTelemetry& BenchTelemetry::Instance() {
  static BenchTelemetry instance;
  return instance;
}

namespace {

/// Extracts `--<flag> <path>` or `--<flag>=<path>` from argv (consuming the
/// tokens), storing the path in `*out`. Returns how many tokens argv shrank
/// by at position i (0 when no match).
int ExtractPathFlag(const char* flag, int i, int* argc, char** argv,
                    std::string* out) {
  if (std::strcmp(argv[i], flag) == 0 && i + 1 < *argc) {
    *out = argv[i + 1];
    for (int j = i; j + 2 < *argc; j++) argv[j] = argv[j + 2];
    *argc -= 2;
    return 2;
  }
  const std::string prefix = std::string(flag) + "=";
  if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
    *out = argv[i] + prefix.size();
    for (int j = i; j + 1 < *argc; j++) argv[j] = argv[j + 1];
    *argc -= 1;
    return 1;
  }
  return 0;
}

}  // namespace

void BenchTelemetry::Configure(std::string bench_name, int* argc, char** argv) {
  bench_name_ = std::move(bench_name);
  int i = 1;
  while (i < *argc) {
    if (ExtractPathFlag("--json", i, argc, argv, &path_) > 0) continue;
    if (ExtractPathFlag("--trace", i, argc, argv, &trace_path_) > 0) continue;
    if (ExtractPathFlag("--metrics", i, argc, argv, &metrics_path_) > 0) {
      continue;
    }
    if (ExtractPathFlag("--stat-statements", i, argc, argv,
                        &stat_statements_path_) > 0) {
      continue;
    }
    i++;
  }
  if (!trace_path_.empty()) obs::TraceLog::Global().Enable();
}

void BenchTelemetry::RecordStrategy(
    const std::map<std::string, std::string>& labels,
    const StrategyResult& result) {
  if (!enabled()) return;
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("type").String("strategy");
  AppendLabels(labels, &w);
  w.Key("strategy").String(result.strategy);
  w.Key("sql").String(result.sql);
  w.Key("seconds").Double(result.seconds);
  w.Key("io_seconds").Double(result.io_seconds);
  w.Key("cpu_seconds").Double(result.cpu_seconds);
  w.Key("pages_sequential").UInt(result.pages_sequential);
  w.Key("pages_random").UInt(result.pages_random);
  w.Key("index_seeks").UInt(result.index_seeks);
  w.Key("rows").UInt(result.rows);
  w.Key("checksum").String(ChecksumHex(result.checksum));
  w.Key("operators").BeginArray();
  for (const obs::OperatorBreakdown& op : result.operators) {
    w.BeginObject();
    w.Key("op").String(op.op);
    w.Key("depth").Int(op.depth);
    w.Key("rows").UInt(op.rows);
    w.Key("next_calls").UInt(op.next_calls);
    w.Key("seconds").Double(op.seconds);
    w.Key("seq_reads").UInt(op.seq_reads);
    w.Key("rand_reads").UInt(op.rand_reads);
    w.Key("page_writes").UInt(op.page_writes);
    w.Key("pool_hits").UInt(op.pool_hits);
    w.Key("pool_misses").UInt(op.pool_misses);
    if (op.est_rows >= 0) w.Key("est_rows").Double(op.est_rows);
    w.EndObject();
  }
  w.EndArray();
  w.Key("heatmap").BeginObject();
  for (const auto& [object, io] : result.heatmap) {
    w.Key(object).BeginObject();
    w.Key("pool_hits").UInt(io.pool_hits);
    w.Key("pool_faults").UInt(io.pool_faults);
    w.Key("sequential_reads").UInt(io.sequential_reads);
    w.Key("random_reads").UInt(io.random_reads);
    w.Key("page_writes").UInt(io.page_writes);
    w.EndObject();
  }
  w.EndObject();
  w.EndObject();
  records_.push_back(std::move(w).str());
}

void BenchTelemetry::RecordMetrics(
    const std::map<std::string, std::string>& labels,
    const std::map<std::string, double>& values) {
  if (!enabled()) return;
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("type").String("metrics");
  AppendLabels(labels, &w);
  w.Key("values").BeginObject();
  for (const auto& [k, v] : values) w.Key(k).Double(v);
  w.EndObject();
  w.EndObject();
  records_.push_back(std::move(w).str());
}

bool BenchTelemetry::WriteMetricsText(const std::string& text) {
  if (metrics_path_.empty()) return true;
  std::FILE* f = std::fopen(metrics_path_.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "telemetry: cannot open %s\n", metrics_path_.c_str());
    return false;
  }
  std::fputs(text.c_str(), f);
  return std::fclose(f) == 0;
}

bool BenchTelemetry::WriteStatStatementsJson(const std::string& json) {
  if (stat_statements_path_.empty()) return true;
  std::FILE* f = std::fopen(stat_statements_path_.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "telemetry: cannot open %s\n",
                 stat_statements_path_.c_str());
    return false;
  }
  std::fputs(json.c_str(), f);
  std::fputc('\n', f);
  return std::fclose(f) == 0;
}

bool BenchTelemetry::Flush() {
  bool ok = true;
  if (!trace_path_.empty() &&
      !obs::TraceLog::Global().WriteFile(trace_path_)) {
    std::fprintf(stderr, "telemetry: cannot write trace %s\n",
                 trace_path_.c_str());
    ok = false;
  }
  if (!enabled()) return ok;
  std::FILE* f = std::fopen(path_.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "telemetry: cannot open %s\n", path_.c_str());
    return false;
  }
  obs::JsonWriter head;
  head.BeginObject();
  head.Key("bench").String(bench_name_);
  head.Key("schema_version").Int(2);
  const std::string& prefix = head.str();
  std::fputs(prefix.c_str(), f);
  // Splice the records array into the open object by hand: the records are
  // already serialized.
  std::fputs(",\"records\":[", f);
  for (size_t i = 0; i < records_.size(); i++) {
    if (i > 0) std::fputc(',', f);
    std::fputs(records_[i].c_str(), f);
  }
  std::fputs("]}", f);
  std::fputc('\n', f);
  return (std::fclose(f) == 0) && ok;
}

}  // namespace paper
}  // namespace elephant
