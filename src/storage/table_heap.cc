#include "storage/table_heap.h"

namespace elephant {

Result<TableHeap> TableHeap::Create(BufferPool* pool) {
  page_id_t pid;
  ELE_ASSIGN_OR_RETURN(Frame * frame, pool->NewPage(&pid));
  SlottedPage page(frame->data());
  page.Init();
  pool->UnpinPage(pid, /*dirty=*/true);
  return TableHeap(pool, pid, pid);
}

Result<Rid> TableHeap::Insert(std::string_view record) {
  if (record.size() > kPageSize / 2) {
    return Status::InvalidArgument("tuple larger than half a page");
  }
  ELE_ASSIGN_OR_RETURN(Frame * frame, pool_->FetchPage(last_page_));
  SlottedPage page(frame->data());
  auto slot = page.Insert(record);
  if (slot.ok()) {
    pool_->UnpinPage(last_page_, /*dirty=*/true);
    return Rid{last_page_, slot.value()};
  }
  // Tail page full: chain a new page.
  page_id_t new_pid;
  auto new_frame = pool_->NewPage(&new_pid);
  if (!new_frame.ok()) {
    pool_->UnpinPage(last_page_, false);
    return new_frame.status();
  }
  SlottedPage new_page(new_frame.value()->data());
  new_page.Init();
  page.SetNextPageId(new_pid);
  pool_->UnpinPage(last_page_, /*dirty=*/true);
  last_page_ = new_pid;
  auto slot2 = new_page.Insert(record);
  pool_->UnpinPage(new_pid, /*dirty=*/true);
  if (!slot2.ok()) return slot2.status();
  return Rid{new_pid, slot2.value()};
}

Status TableHeap::Get(const Rid& rid, std::string* out) const {
  ELE_ASSIGN_OR_RETURN(Frame * frame, pool_->FetchPage(rid.page_id));
  SlottedPage page(frame->data());
  auto rec = page.Get(rid.slot);
  if (rec.ok()) out->assign(rec.value().data(), rec.value().size());
  pool_->UnpinPage(rid.page_id, false);
  return rec.status();
}

Status TableHeap::Delete(const Rid& rid) {
  ELE_ASSIGN_OR_RETURN(Frame * frame, pool_->FetchPage(rid.page_id));
  SlottedPage page(frame->data());
  Status s = page.Delete(rid.slot);
  pool_->UnpinPage(rid.page_id, s.ok());
  return s;
}

Result<TableHeap::Iterator> TableHeap::Begin() const {
  Iterator it(pool_, first_page_);
  ELE_RETURN_NOT_OK(it.SeekToLive());
  return it;
}

TableHeap::Iterator::Iterator(BufferPool* pool, page_id_t page_id)
    : pool_(pool), page_(page_id), slot_(0) {}

Status TableHeap::Iterator::SeekToLive() {
  while (page_ != kInvalidPageId) {
    ELE_ASSIGN_OR_RETURN(Frame * frame, pool_->FetchPage(page_));
    SlottedPage sp(frame->data());
    const uint16_t count = sp.SlotCount();
    while (slot_ < count) {
      auto rec = sp.Get(slot_);
      if (rec.ok()) {
        record_.assign(rec.value().data(), rec.value().size());
        rid_ = Rid{page_, slot_};
        valid_ = true;
        pool_->UnpinPage(page_, false);
        return Status::OK();
      }
      slot_++;
    }
    page_id_t next = sp.NextPageId();
    pool_->UnpinPage(page_, false);
    page_ = next;
    slot_ = 0;
  }
  valid_ = false;
  return Status::OK();
}

Status TableHeap::Iterator::Next() {
  slot_++;
  return SeekToLive();
}

}  // namespace elephant
