#include "storage/table_heap.h"

namespace elephant {

Result<TableHeap> TableHeap::Create(BufferPool* pool) {
  page_id_t pid;
  ELE_ASSIGN_OR_RETURN(PageGuard guard, pool->NewPageGuarded(&pid));
  SlottedPage page(guard.data());
  page.Init();
  guard.MarkDirty();
  return TableHeap(pool, pid, pid);
}

Result<Rid> TableHeap::Insert(std::string_view record) {
  if (record.size() > kPageSize / 2) {
    return Status::InvalidArgument("tuple larger than half a page");
  }
  ELE_ASSIGN_OR_RETURN(PageGuard tail, pool_->FetchPageGuarded(last_page_));
  SlottedPage page(tail.data());
  auto slot = page.Insert(record);
  if (slot.ok()) {
    tail.MarkDirty();
    return Rid{last_page_, slot.value()};
  }
  // Tail page full: chain a new page. On NewPage failure the tail guard
  // releases its (clean) pin automatically.
  page_id_t new_pid;
  ELE_ASSIGN_OR_RETURN(PageGuard fresh, pool_->NewPageGuarded(&new_pid));
  SlottedPage new_page(fresh.data());
  new_page.Init();
  page.SetNextPageId(new_pid);
  tail.MarkDirty();
  tail.Release();
  last_page_ = new_pid;
  auto slot2 = new_page.Insert(record);
  fresh.MarkDirty();
  if (!slot2.ok()) return slot2.status();
  return Rid{new_pid, slot2.value()};
}

Status TableHeap::Get(const Rid& rid, std::string* out) const {
  ELE_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPageGuarded(rid.page_id));
  SlottedPage page(guard.data());
  auto rec = page.Get(rid.slot);
  if (rec.ok()) out->assign(rec.value().data(), rec.value().size());
  return rec.status();
}

Status TableHeap::Delete(const Rid& rid) {
  ELE_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPageGuarded(rid.page_id));
  SlottedPage page(guard.data());
  Status s = page.Delete(rid.slot);
  if (s.ok()) guard.MarkDirty();
  return s;
}

Status TableHeap::RefreshLastPage() {
  page_id_t cur = first_page_;
  while (true) {
    ELE_ASSIGN_OR_RETURN(
        PageGuard guard,
        pool_->FetchPageGuarded(cur, AccessIntent::kSequentialScan));
    const page_id_t next = SlottedPage(guard.data()).NextPageId();
    if (next == kInvalidPageId) break;
    cur = next;
  }
  last_page_ = cur;
  return Status::OK();
}

Result<TableHeap::Iterator> TableHeap::Begin() const {
  Iterator it(pool_, first_page_);
  ELE_RETURN_NOT_OK(it.SeekToLive());
  return it;
}

TableHeap::Iterator::Iterator(BufferPool* pool, page_id_t page_id)
    : pool_(pool), page_(page_id), slot_(0) {}

Status TableHeap::Iterator::SeekToLive() {
  while (page_ != kInvalidPageId) {
    // The iterator walks the full page chain in allocation order: a
    // sequential sweep, so it uses the scan ring / read-ahead path.
    ELE_ASSIGN_OR_RETURN(
        PageGuard guard,
        pool_->FetchPageGuarded(page_, AccessIntent::kSequentialScan));
    SlottedPage sp(guard.data());
    const uint16_t count = sp.SlotCount();
    while (slot_ < count) {
      auto rec = sp.Get(slot_);
      if (rec.ok()) {
        record_.assign(rec.value().data(), rec.value().size());
        rid_ = Rid{page_, slot_};
        valid_ = true;
        return Status::OK();
      }
      slot_++;
    }
    page_ = sp.NextPageId();
    slot_ = 0;
  }
  valid_ = false;
  return Status::OK();
}

Status TableHeap::Iterator::Next() {
  slot_++;
  return SeekToLive();
}

}  // namespace elephant
