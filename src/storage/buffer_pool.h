#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/config.h"
#include "common/status.h"
#include "storage/disk_manager.h"

namespace elephant {

/// A buffered page frame. `data()` exposes the raw kPageSize bytes.
class Frame {
 public:
  char* data() { return data_.get(); }
  const char* data() const { return data_.get(); }

 private:
  friend class BufferPool;
  std::unique_ptr<char[]> data_;
  page_id_t page_id_ = kInvalidPageId;
  int pin_count_ = 0;
  bool dirty_ = false;
};

/// Buffer-pool hit/miss counters (cache behaviour, distinct from disk I/O).
struct BufferPoolStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
};

/// A fixed-capacity LRU buffer pool over a DiskManager. All page access in
/// the engine flows through here, so "cold cache" experiments are obtained by
/// calling `EvictAll()` before a run.
///
/// Thread-safe: one latch guards the page table, the replacement state and
/// the frame metadata (pin counts, dirty bits), and is held across the disk
/// read that services a miss. `frames_` is sized once in the constructor and
/// never reallocates, so Frame pointers handed to callers stay valid; a
/// pinned frame can never be evicted, so callers may read a pinned frame's
/// data without the latch. The latch is taken once per page (not per row),
/// which keeps contention low for scan-heavy workloads.
class BufferPool {
 public:
  BufferPool(DiskManager* disk, uint32_t capacity_pages = kDefaultBufferPoolPages);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Pins the page in memory, reading it from disk on a miss.
  /// Caller must Unpin() exactly once per fetch.
  Result<Frame*> FetchPage(page_id_t page_id);

  /// Allocates a new page on disk and pins its (zeroed, dirty) frame.
  Result<Frame*> NewPage(page_id_t* page_id);

  /// Releases one pin; `dirty` marks the frame as modified.
  void UnpinPage(page_id_t page_id, bool dirty);

  /// Writes back all dirty frames.
  Status FlushAll();

  /// Flushes and drops every frame — the cold-cache knob for benchmarks.
  Status EvictAll();

  /// Snapshot of the hit/miss counters (copied under the latch).
  BufferPoolStats stats() const {
    std::lock_guard<std::mutex> lock(latch_);
    return stats_;
  }
  void ResetStats() {
    std::lock_guard<std::mutex> lock(latch_);
    stats_ = BufferPoolStats{};
  }

  DiskManager* disk() { return disk_; }
  uint32_t capacity() const { return capacity_; }

 private:
  /// Returns a free frame, evicting the LRU unpinned page if needed.
  /// Caller holds latch_.
  Result<size_t> GetVictimFrame();
  /// Caller holds latch_.
  Status FlushFrame(size_t frame_idx);
  /// Caller holds latch_.
  void Touch(size_t frame_idx);

  mutable std::mutex latch_;
  DiskManager* disk_;
  uint32_t capacity_;
  std::vector<Frame> frames_;
  std::unordered_map<page_id_t, size_t> page_table_;
  // LRU: front = most recent. Entries are frame indices of resident pages.
  std::list<size_t> lru_;
  std::unordered_map<size_t, std::list<size_t>::iterator> lru_pos_;
  std::vector<size_t> free_frames_;
  BufferPoolStats stats_;
};

/// RAII pin holder: unpins on destruction. Use `MarkDirty()` before release
/// when the page was modified.
class PageGuard {
 public:
  PageGuard() = default;
  PageGuard(BufferPool* pool, page_id_t page_id, Frame* frame)
      : pool_(pool), page_id_(page_id), frame_(frame) {}
  ~PageGuard() { Release(); }

  PageGuard(const PageGuard&) = delete;
  PageGuard& operator=(const PageGuard&) = delete;
  PageGuard(PageGuard&& o) noexcept { *this = std::move(o); }
  PageGuard& operator=(PageGuard&& o) noexcept {
    if (this != &o) {
      Release();
      pool_ = o.pool_;
      page_id_ = o.page_id_;
      frame_ = o.frame_;
      dirty_ = o.dirty_;
      o.pool_ = nullptr;
      o.frame_ = nullptr;
    }
    return *this;
  }

  bool valid() const { return frame_ != nullptr; }
  page_id_t page_id() const { return page_id_; }
  char* data() { return frame_->data(); }
  const char* data() const { return frame_->data(); }
  void MarkDirty() { dirty_ = true; }

  void Release() {
    if (pool_ != nullptr && frame_ != nullptr) {
      pool_->UnpinPage(page_id_, dirty_);
    }
    pool_ = nullptr;
    frame_ = nullptr;
    dirty_ = false;
  }

 private:
  BufferPool* pool_ = nullptr;
  page_id_t page_id_ = kInvalidPageId;
  Frame* frame_ = nullptr;
  bool dirty_ = false;
};

}  // namespace elephant
