#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/config.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "storage/disk_manager.h"
#include "storage/page_guard.h"

namespace elephant {

/// A buffered page frame. `data()` exposes the raw kPageSize bytes.
class Frame {
 public:
  char* data() { return data_.get(); }
  const char* data() const { return data_.get(); }

 private:
  friend class BufferPool;
  std::unique_ptr<char[]> data_;
  page_id_t page_id_ = kInvalidPageId;
  int pin_count_ = 0;
  bool dirty_ = false;
  bool in_scan_ring_ = false;  ///< replacement region (see BufferPool docs)
  /// Highest WAL LSN recorded against this frame (kInvalidLsn outside WAL
  /// mode). The WAL rule: the log must be durable up to this LSN before the
  /// frame's bytes may be written back to disk.
  lsn_t last_lsn_ = kInvalidLsn;
};

/// Buffer-pool hit/miss counters (cache behaviour, distinct from disk I/O).
struct BufferPoolStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  /// Misses fetched under AccessIntent::kSequentialScan, which entered the
  /// scan ring instead of the young LRU region.
  uint64_t scan_ring_inserts = 0;
  /// Point-lookup hits on scan-ring pages that promoted the page into the
  /// young region (proof of reuse beyond the scan).
  uint64_t scan_ring_promotions = 0;
  /// Unpin of a non-resident page or of a frame whose pin count is already
  /// zero — always a caller bug (double unpin / unpin-after-evict). Kept as
  /// a counter so tests can assert the pin protocol was never violated.
  uint64_t pin_protocol_errors = 0;
};

/// A fixed-capacity scan-resistant buffer pool over a DiskManager. All page
/// access in the engine flows through here, so "cold cache" experiments are
/// obtained by calling `EvictAll()` before a run.
///
/// Replacement is two-region. Pages fetched with the default
/// AccessIntent::kPointLookup live in the *young* region, an exact LRU —
/// point-lookup-only workloads see byte-identical eviction behaviour to a
/// plain LRU pool. Pages faulted in under AccessIntent::kSequentialScan
/// enter the *scan ring* instead, and victims are always taken from the
/// ring before the young region, so one large sequential scan recycles its
/// own ring pages and cannot flush a hot B+-tree working set (PostgreSQL's
/// bulk-read ring buffer, MySQL's midpoint insertion). A point-lookup hit on
/// a ring page promotes it into the young region (it has proven reuse); a
/// sequential hit keeps it in the ring.
///
/// Thread-safe: one latch guards the page table, the replacement state and
/// the frame metadata (pin counts, dirty bits), and is held across the disk
/// read that services a miss. `frames_` is sized once in the constructor and
/// never reallocates, so Frame pointers handed to callers stay valid; a
/// pinned frame can never be evicted, so callers may read a pinned frame's
/// data without the latch. The latch is taken once per page (not per row),
/// which keeps contention low for scan-heavy workloads. The locking
/// discipline is annotated for Clang -Wthread-safety (`analyze` preset).
class BufferPool {
 public:
  /// A non-null `heatmap` additionally receives every hit/fault, attributed
  /// to the calling thread's AccessScope label under the pool latch (so the
  /// per-object totals sum exactly to stats() — pass the same heatmap the
  /// DiskManager uses and one object's hits+faults+reads stay consistent).
  BufferPool(DiskManager* disk, uint32_t capacity_pages = kDefaultBufferPoolPages,
             obs::AccessHeatmap* heatmap = nullptr);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Pins the page and wraps the pin in a guard that releases it on scope
  /// exit. The only fetch API engine code outside this class may use
  /// (enforced by the `raw-page-api` lint rule). `intent` selects the
  /// replacement region on a miss and flows to the disk read-ahead.
  Result<PageGuard> FetchPageGuarded(
      page_id_t page_id, AccessIntent intent = AccessIntent::kPointLookup);

  /// Allocates a new page on disk and returns a guard over its (zeroed,
  /// already dirty) frame. Bulk-load paths pass kSequentialScan so freshly
  /// built structures do not flush the young region.
  Result<PageGuard> NewPageGuarded(
      page_id_t* page_id, AccessIntent intent = AccessIntent::kPointLookup);

  /// Pins the page in memory, reading it from disk on a miss.
  /// Caller must Unpin() exactly once per fetch. Prefer FetchPageGuarded:
  /// outside this class and PageGuard, the raw pair is banned by the linter
  /// (it exists for the pool's own tests).
  Result<Frame*> FetchPage(page_id_t page_id,
                           AccessIntent intent = AccessIntent::kPointLookup);

  /// Allocates a new page on disk and pins its (zeroed, dirty) frame.
  /// Same caveat as FetchPage: engine code uses NewPageGuarded.
  Result<Frame*> NewPage(page_id_t* page_id,
                         AccessIntent intent = AccessIntent::kPointLookup);

  /// Releases one pin; `dirty` marks the frame as modified.
  void UnpinPage(page_id_t page_id, bool dirty);

  /// Installs the WAL-rule hook: before any dirty frame with a recorded LSN
  /// is written back, `flush(lsn)` is invoked and must make the log durable
  /// up to that LSN (or fail, which blocks the write-back). Wired by the
  /// Database to LogManager::FlushUntil in WAL mode; nullptr disables.
  void SetWalFlushCallback(std::function<Status(lsn_t)> flush) {
    MutexLock lock(latch_);
    wal_flush_ = std::move(flush);
  }

  /// Records that the log record ending at `lsn` modified `page_id`. The
  /// page must be resident and pinned (the caller just mutated it under a
  /// guard). Part of the WAL protocol: callers outside src/wal/ and src/txn/
  /// are rejected by elephant_lint (rule wal-protocol).
  void RecordPageLsn(page_id_t page_id, lsn_t lsn);

  /// Writes back all dirty frames.
  Status FlushAll();

  /// Flushes and drops every unpinned frame — the cold-cache knob for
  /// benchmarks. When pinned frames remain resident (a caller still holds a
  /// guard), every unpinned frame is still evicted, bookkeeping stays
  /// consistent, and a FailedPrecondition listing the pinned pages is
  /// returned.
  Status EvictAll();

  /// Number of frames currently pinned (invariant checks and tests).
  size_t PinnedFrames() const;

  /// Number of frames holding a page right now (occupancy gauge).
  size_t ResidentPages() const {
    MutexLock lock(latch_);
    return page_table_.size();
  }

  /// True when `page_id` is resident (tests of replacement behaviour).
  bool IsResident(page_id_t page_id) const {
    MutexLock lock(latch_);
    return page_table_.count(page_id) != 0;
  }

  /// Number of resident pages currently in the scan ring (tests/gauges).
  size_t ScanRingPages() const {
    MutexLock lock(latch_);
    return scan_ring_.size();
  }

  /// OK when no frame is pinned; otherwise an Internal error listing every
  /// pinned page and its pin count. The query-end invariant: once a
  /// statement's executors are destroyed, every pin they took must be gone.
  Status CheckNoPinsHeld() const;

  /// Debug invariant: aborts with a diagnostic when any pin is held. Wired
  /// into tests after every statement; cheap enough (one latched scan) to
  /// call freely outside hot loops.
  void AssertNoPinsHeld() const;

  /// Snapshot of the hit/miss counters (copied under the latch).
  BufferPoolStats stats() const {
    MutexLock lock(latch_);
    return stats_;
  }
  void ResetStats() {
    MutexLock lock(latch_);
    stats_ = BufferPoolStats{};
  }

  DiskManager* disk() { return disk_; }
  uint32_t capacity() const { return capacity_; }

 private:
  /// Returns a free frame, evicting from the scan ring first, then the
  /// young-LRU tail. Pinned frames are skipped; all-pinned pools fail with
  /// ResourceExhausted and untouched bookkeeping.
  Result<size_t> GetVictimFrame() REQUIRES(latch_);
  Status FlushFrame(size_t frame_idx) REQUIRES(latch_);
  /// Moves the frame to the front of the young region (exact LRU touch),
  /// pulling it out of the scan ring if it was there.
  void Touch(size_t frame_idx) REQUIRES(latch_);
  /// Moves the frame to the front of the scan ring, pulling it out of the
  /// young region if it was there.
  void TouchRing(size_t frame_idx) REQUIRES(latch_);
  /// Removes the frame from whichever replacement list holds it.
  void RemoveFromReplacer(size_t frame_idx) REQUIRES(latch_);

  mutable Mutex latch_{LockRank::kBufferPool, "BufferPool::latch_"};
  DiskManager* const disk_;
  const uint32_t capacity_;
  obs::AccessHeatmap* const heatmap_;
  /// Frame *metadata* (page id, pin count, dirty bit) is guarded; the page
  /// bytes of a pinned frame may be read without the latch (see class doc).
  std::vector<Frame> frames_ GUARDED_BY(latch_);
  std::unordered_map<page_id_t, size_t> page_table_ GUARDED_BY(latch_);
  // Young region LRU: front = most recent. Entries are frame indices of
  // resident point-access pages.
  std::list<size_t> lru_ GUARDED_BY(latch_);
  // Scan ring: front = most recent sequential page. Victimized before lru_.
  std::list<size_t> scan_ring_ GUARDED_BY(latch_);
  // Position of every resident frame in its list (which list a frame is on
  // is recorded in Frame::in_scan_ring_).
  std::unordered_map<size_t, std::list<size_t>::iterator> list_pos_
      GUARDED_BY(latch_);
  std::vector<size_t> free_frames_ GUARDED_BY(latch_);
  BufferPoolStats stats_ GUARDED_BY(latch_);
  std::function<Status(lsn_t)> wal_flush_ GUARDED_BY(latch_);
};

}  // namespace elephant
