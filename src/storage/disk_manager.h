#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/config.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace elephant {

namespace obs {
class AccessHeatmap;  // heatmap.h includes this header; see src/obs
}  // namespace obs

class FaultInjector;  // storage/fault_injection.h

/// How the caller expects to touch the page it is fetching. The hint flows
/// from the planner (which knows whether an access path is a full scan or a
/// point probe) down through the buffer pool to the disk manager:
///
///   kPointLookup      index descents, probes, bounded range scans — pages
///                     enter the pool's exact-LRU young region and the disk
///                     opens no read-ahead window.
///   kSequentialScan   full clustered scans, c-table concat scans, bulk
///                     loads — pages enter the pool's scan ring (evicted
///                     before the young region, so one big scan cannot flush
///                     a hot index working set) and the disk opens a
///                     read-ahead window at the stream head.
enum class AccessIntent {
  kPointLookup,
  kSequentialScan,
};

/// Read-ahead activity at the disk layer. A "window" is one modeled transfer
/// that stages the next N pages of a sequential stream into the drive
/// buffer; demanded reads landing inside a window are prefetch hits.
struct ReadaheadStats {
  uint64_t windows_issued = 0;    ///< prefetch transfers started or extended
  uint64_t pages_prefetched = 0;  ///< pages staged into windows
  uint64_t prefetch_hits = 0;     ///< demanded reads served from a window
  uint64_t prefetch_wasted = 0;   ///< staged pages discarded unread

  ReadaheadStats operator-(const ReadaheadStats& o) const {
    ReadaheadStats r;
    r.windows_issued = windows_issued - o.windows_issued;
    r.pages_prefetched = pages_prefetched - o.pages_prefetched;
    r.prefetch_hits = prefetch_hits - o.prefetch_hits;
    r.prefetch_wasted = prefetch_wasted - o.prefetch_wasted;
    return r;
  }
};

/// Counters describing physical I/O traffic observed at the disk layer.
struct IoStats {
  uint64_t sequential_reads = 0;  ///< page reads contiguous with the previous read
  uint64_t random_reads = 0;      ///< page reads requiring a head seek
  uint64_t page_writes = 0;
  uint64_t fsyncs = 0;            ///< Sync() calls (WAL group flushes, checkpoints)
  ReadaheadStats readahead;       ///< prefetch-window activity

  uint64_t TotalReads() const { return sequential_reads + random_reads; }

  IoStats operator-(const IoStats& o) const {
    IoStats r;
    r.sequential_reads = sequential_reads - o.sequential_reads;
    r.random_reads = random_reads - o.random_reads;
    r.page_writes = page_writes - o.page_writes;
    r.fsyncs = fsyncs - o.fsyncs;
    r.readahead = readahead - o.readahead;
    return r;
  }
};

/// Analytical model of a spinning disk, used to convert IoStats into seconds.
/// Defaults approximate the paper's 7200 RPM SATA drive: average positioning
/// time (seek + half rotation), a sustained sequential transfer rate, and a
/// per-request command overhead.
struct DiskModel {
  double seek_seconds = 0.0085;            ///< average seek + rotational latency
  double transfer_bytes_per_sec = 100e6;   ///< sustained sequential bandwidth
  /// Command turnaround charged on every demanded read the drive buffer could
  /// not satisfy: the host issues the request, the drive completes it, the
  /// host issues the next one. Read-ahead exists to hide exactly this — a
  /// prefetch hit streams straight from the drive buffer and pays transfer
  /// only. Random reads' seek already subsumes it.
  double request_overhead_seconds = 0.0002;

  /// Seconds to serve the given traffic: every random read pays a seek plus a
  /// page transfer; a sequential read pays transfer plus, unless it was
  /// served from a read-ahead window, the per-request overhead. Prefetched
  /// pages that are later demanded pay their transfer at demand time (the
  /// bandwidth is consumed either way); wasted prefetch overlaps the stream
  /// and is not charged.
  double Seconds(const IoStats& s) const {
    const double page_xfer = static_cast<double>(kPageSize) / transfer_bytes_per_sec;
    const uint64_t hits = s.readahead.prefetch_hits < s.sequential_reads
                              ? s.readahead.prefetch_hits
                              : s.sequential_reads;
    return static_cast<double>(s.random_reads) * (seek_seconds + page_xfer) +
           static_cast<double>(s.sequential_reads - hits) *
               (request_overhead_seconds + page_xfer) +
           static_cast<double>(hits) * page_xfer;
  }

  /// Seconds to sequentially read `bytes` from disk (used by the ColOpt
  /// lower-bound model: time to just scan the compressed column data).
  double SequentialReadSeconds(uint64_t bytes) const {
    const uint64_t pages = (bytes + kPageSize - 1) / kPageSize;
    return seek_seconds +  // one initial positioning
           static_cast<double>(pages) * kPageSize / transfer_bytes_per_sec;
  }
};

/// Per-query (or per-worker) I/O attribution sink. The disk manager and the
/// buffer pool record every page access into the sink attached to the
/// current thread (see IoScope) in addition to their global counters, so a
/// query's I/O can be totalled exactly even while other sessions run
/// concurrently — the global-counter delta the engine used when it was
/// single-threaded would blend all sessions together.
///
/// Counters are atomic so worker sinks can be folded into a query sink while
/// the owning thread still reads it.
struct IoSink {
  std::atomic<uint64_t> sequential_reads{0};
  std::atomic<uint64_t> random_reads{0};
  std::atomic<uint64_t> page_writes{0};
  std::atomic<uint64_t> pool_hits{0};
  std::atomic<uint64_t> pool_misses{0};
  std::atomic<uint64_t> readahead_windows{0};
  std::atomic<uint64_t> pages_prefetched{0};
  std::atomic<uint64_t> prefetch_hits{0};
  std::atomic<uint64_t> prefetch_wasted{0};

  IoStats ToStats() const {
    IoStats s;
    s.sequential_reads = sequential_reads.load(std::memory_order_relaxed);
    s.random_reads = random_reads.load(std::memory_order_relaxed);
    s.page_writes = page_writes.load(std::memory_order_relaxed);
    s.readahead.windows_issued = readahead_windows.load(std::memory_order_relaxed);
    s.readahead.pages_prefetched = pages_prefetched.load(std::memory_order_relaxed);
    s.readahead.prefetch_hits = prefetch_hits.load(std::memory_order_relaxed);
    s.readahead.prefetch_wasted = prefetch_wasted.load(std::memory_order_relaxed);
    return s;
  }

  /// Adds this sink's counts into `other` (used when a worker finishes and
  /// its traffic is folded into the query-level sink).
  void AddTo(IoSink* other) const {
    other->sequential_reads.fetch_add(
        sequential_reads.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    other->random_reads.fetch_add(random_reads.load(std::memory_order_relaxed),
                                  std::memory_order_relaxed);
    other->page_writes.fetch_add(page_writes.load(std::memory_order_relaxed),
                                 std::memory_order_relaxed);
    other->pool_hits.fetch_add(pool_hits.load(std::memory_order_relaxed),
                               std::memory_order_relaxed);
    other->pool_misses.fetch_add(pool_misses.load(std::memory_order_relaxed),
                                 std::memory_order_relaxed);
    other->readahead_windows.fetch_add(
        readahead_windows.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    other->pages_prefetched.fetch_add(
        pages_prefetched.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    other->prefetch_hits.fetch_add(
        prefetch_hits.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    other->prefetch_wasted.fetch_add(
        prefetch_wasted.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
  }
};

/// The sink attached to the calling thread (nullptr when none).
IoSink* CurrentIoSink();

/// RAII scope that attaches `sink` to the current thread, restoring the
/// previous attachment on destruction (scopes nest: a worker's sink shadows
/// the session's query sink while the worker runs on that thread).
class IoScope {
 public:
  explicit IoScope(IoSink* sink);
  ~IoScope();

  IoScope(const IoScope&) = delete;
  IoScope& operator=(const IoScope&) = delete;

 private:
  IoSink* prev_;
};

/// An in-memory simulated disk. Pages live in RAM, but every read/write is
/// accounted for and classified sequential vs. random so that a DiskModel can
/// report the time a real spinning disk would have taken. This stands in for
/// the paper's 250 GB SATA drive and makes experiments deterministic.
///
/// Classification tracks a small set of concurrent read streams (modeling
/// drive readahead / command queueing): a read is sequential when it extends
/// any recently active stream by one page. This matters for the paper's §3
/// observation that index-nested-loop probes over c-tables arrive in
/// strictly ascending page order and therefore do NOT pay a seek per probe,
/// even though a naive cost model assumes they would.
///
/// Read-ahead: each stream additionally carries a forward prefetch window —
/// the interval (last_page, buffered_until] modeled as staged in the drive
/// buffer. A window opens when a read arrives with
/// AccessIntent::kSequentialScan (or when a stream is extended page-by-page)
/// and is topped up as the stream consumes it, so a steady scan sees every
/// page after the first as a prefetch hit. Demanded reads inside a window
/// are still counted as sequential_reads (the page-count invariants are
/// unchanged); they are *also* counted as prefetch hits, which the DiskModel
/// exempts from per-request overhead. Plain point reads never open windows,
/// so random-I/O-dominated workloads are byte-identical with read-ahead on
/// or off.
///
/// Thread-safe: a single mutex guards the page directory, the stream
/// classifier and the global counters, so per-read classification and
/// accounting stay exact (serialized, like a real drive head) no matter how
/// many sessions or workers issue I/O concurrently. Per-query totals are
/// exact via IoSink; the sequential/random *split* of interleaved streams
/// depends on arrival order, exactly as it would on hardware.
class DiskManager {
 public:
  /// When `heatmap` is non-null, every read/write is additionally recorded
  /// there — attributed to the calling thread's AccessScope label, under the
  /// same critical section that bumps the global counters, so per-object
  /// totals sum exactly to stats().
  explicit DiskManager(obs::AccessHeatmap* heatmap = nullptr)
      : heatmap_(heatmap) {}

  /// Number of concurrent sequential streams the classifier tracks.
  static constexpr int kReadStreams = 8;

  /// Default read-ahead window: 32 pages = 256 KiB, the classic drive /
  /// kernel readahead size.
  static constexpr uint32_t kDefaultReadaheadPages = 32;

  DiskManager(const DiskManager&) = delete;
  DiskManager& operator=(const DiskManager&) = delete;

  /// Allocates a fresh zeroed page and returns its id.
  page_id_t AllocatePage();

  /// Reads a page into `dest` (kPageSize bytes). `intent` is the caller's
  /// access-pattern hint: kSequentialScan opens a read-ahead window at the
  /// head of a new stream, kPointLookup never does.
  Status ReadPage(page_id_t page_id, char* dest,
                  AccessIntent intent = AccessIntent::kPointLookup);

  /// Writes a page from `src` (kPageSize bytes). With a fault injector
  /// armed, the write may be dropped (simulated crash), in which case the
  /// backing store is untouched and kIoError is returned.
  Status WritePage(page_id_t page_id, const char* src);

  /// Simulated fsync: counted in IoStats::fsyncs. Returns kIoError when a
  /// fault injector drops the sync (the caller's durability watermark must
  /// not advance).
  Status Sync();

  /// Arms (or with nullptr disarms) fault injection on page writes and
  /// syncs. The injector is owned by the caller and must outlive its use;
  /// the same injector is typically shared with the LogManager so page and
  /// log durability share one crash-op counter.
  void SetFaultInjector(FaultInjector* injector) {
    MutexLock lock(mu_);
    injector_ = injector;
  }

  /// Deep-copies the backing store — the "platter image" a crash test
  /// carries across a simulated reboot. Dropped (post-crash) writes are
  /// naturally absent because they never reached pages_.
  std::vector<std::string> ClonePages() const;

  /// Installs a platter image into a freshly constructed DiskManager (the
  /// reboot counterpart of ClonePages). Fails unless no page has been
  /// allocated yet.
  Status RestorePages(const std::vector<std::string>& pages);

  /// Enables/disables read-ahead and sets the window size in pages.
  /// Read-ahead is on by default. Window sizes of 0 disable it.
  void ConfigureReadahead(bool enabled,
                          uint32_t window_pages = kDefaultReadaheadPages) {
    MutexLock lock(mu_);
    readahead_enabled_ = enabled && window_pages > 0;
    readahead_pages_ = window_pages;
  }

  bool readahead_enabled() const {
    MutexLock lock(mu_);
    return readahead_enabled_;
  }

  /// Number of allocated pages.
  uint32_t NumPages() const {
    MutexLock lock(mu_);
    return static_cast<uint32_t>(pages_.size());
  }

  /// Snapshot of the global counters (copied under the lock).
  IoStats stats() const {
    MutexLock lock(mu_);
    return stats_;
  }
  void ResetStats() {
    MutexLock lock(mu_);
    stats_ = IoStats{};
    for (int i = 0; i < kReadStreams; i++) streams_[i] = StreamPos{};
    clock_ = 0;
  }

 private:
  struct StreamPos {
    page_id_t last_page = kInvalidPageId - 1;
    /// Highest page staged in this stream's prefetch window; the interval
    /// (last_page, buffered_until] is "in the drive buffer". Equal to
    /// last_page when no window is open.
    page_id_t buffered_until = kInvalidPageId - 1;
    uint64_t last_used = 0;
  };

  /// Opens or tops up the prefetch window of `s` so that at least half a
  /// window is staged ahead of last_page (bounded by the allocated extent).
  void MaybeExtendWindow(StreamPos* s, uint64_t* windows_issued,
                         uint64_t* pages_prefetched) REQUIRES(mu_);

  obs::AccessHeatmap* const heatmap_;
  mutable Mutex mu_{LockRank::kDiskManager, "DiskManager::mu_"};
  std::vector<std::unique_ptr<char[]>> pages_ GUARDED_BY(mu_);
  IoStats stats_ GUARDED_BY(mu_);
  StreamPos streams_[kReadStreams] GUARDED_BY(mu_);
  uint64_t clock_ GUARDED_BY(mu_) = 0;
  bool readahead_enabled_ GUARDED_BY(mu_) = true;
  uint32_t readahead_pages_ GUARDED_BY(mu_) = kDefaultReadaheadPages;
  FaultInjector* injector_ GUARDED_BY(mu_) = nullptr;
};

}  // namespace elephant
