#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/config.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace elephant {

namespace obs {
class AccessHeatmap;  // heatmap.h includes this header; see src/obs
}  // namespace obs

/// Counters describing physical I/O traffic observed at the disk layer.
struct IoStats {
  uint64_t sequential_reads = 0;  ///< page reads contiguous with the previous read
  uint64_t random_reads = 0;      ///< page reads requiring a head seek
  uint64_t page_writes = 0;

  uint64_t TotalReads() const { return sequential_reads + random_reads; }

  IoStats operator-(const IoStats& o) const {
    IoStats r;
    r.sequential_reads = sequential_reads - o.sequential_reads;
    r.random_reads = random_reads - o.random_reads;
    r.page_writes = page_writes - o.page_writes;
    return r;
  }
};

/// Analytical model of a spinning disk, used to convert IoStats into seconds.
/// Defaults approximate the paper's 7200 RPM SATA drive: average positioning
/// time (seek + half rotation) and a sustained sequential transfer rate.
struct DiskModel {
  double seek_seconds = 0.0085;            ///< average seek + rotational latency
  double transfer_bytes_per_sec = 100e6;   ///< sustained sequential bandwidth

  /// Seconds to serve the given traffic: every random read pays a seek plus a
  /// page transfer; sequential reads pay transfer only.
  double Seconds(const IoStats& s) const {
    const double page_xfer = static_cast<double>(kPageSize) / transfer_bytes_per_sec;
    return static_cast<double>(s.random_reads) * (seek_seconds + page_xfer) +
           static_cast<double>(s.sequential_reads) * page_xfer;
  }

  /// Seconds to sequentially read `bytes` from disk (used by the ColOpt
  /// lower-bound model: time to just scan the compressed column data).
  double SequentialReadSeconds(uint64_t bytes) const {
    const uint64_t pages = (bytes + kPageSize - 1) / kPageSize;
    return seek_seconds +  // one initial positioning
           static_cast<double>(pages) * kPageSize / transfer_bytes_per_sec;
  }
};

/// Per-query (or per-worker) I/O attribution sink. The disk manager and the
/// buffer pool record every page access into the sink attached to the
/// current thread (see IoScope) in addition to their global counters, so a
/// query's I/O can be totalled exactly even while other sessions run
/// concurrently — the global-counter delta the engine used when it was
/// single-threaded would blend all sessions together.
///
/// Counters are atomic so worker sinks can be folded into a query sink while
/// the owning thread still reads it.
struct IoSink {
  std::atomic<uint64_t> sequential_reads{0};
  std::atomic<uint64_t> random_reads{0};
  std::atomic<uint64_t> page_writes{0};
  std::atomic<uint64_t> pool_hits{0};
  std::atomic<uint64_t> pool_misses{0};

  IoStats ToStats() const {
    IoStats s;
    s.sequential_reads = sequential_reads.load(std::memory_order_relaxed);
    s.random_reads = random_reads.load(std::memory_order_relaxed);
    s.page_writes = page_writes.load(std::memory_order_relaxed);
    return s;
  }

  /// Adds this sink's counts into `other` (used when a worker finishes and
  /// its traffic is folded into the query-level sink).
  void AddTo(IoSink* other) const {
    other->sequential_reads.fetch_add(
        sequential_reads.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    other->random_reads.fetch_add(random_reads.load(std::memory_order_relaxed),
                                  std::memory_order_relaxed);
    other->page_writes.fetch_add(page_writes.load(std::memory_order_relaxed),
                                 std::memory_order_relaxed);
    other->pool_hits.fetch_add(pool_hits.load(std::memory_order_relaxed),
                               std::memory_order_relaxed);
    other->pool_misses.fetch_add(pool_misses.load(std::memory_order_relaxed),
                                 std::memory_order_relaxed);
  }
};

/// The sink attached to the calling thread (nullptr when none).
IoSink* CurrentIoSink();

/// RAII scope that attaches `sink` to the current thread, restoring the
/// previous attachment on destruction (scopes nest: a worker's sink shadows
/// the session's query sink while the worker runs on that thread).
class IoScope {
 public:
  explicit IoScope(IoSink* sink);
  ~IoScope();

  IoScope(const IoScope&) = delete;
  IoScope& operator=(const IoScope&) = delete;

 private:
  IoSink* prev_;
};

/// An in-memory simulated disk. Pages live in RAM, but every read/write is
/// accounted for and classified sequential vs. random so that a DiskModel can
/// report the time a real spinning disk would have taken. This stands in for
/// the paper's 250 GB SATA drive and makes experiments deterministic.
///
/// Classification tracks a small set of concurrent read streams (modeling
/// drive readahead / command queueing): a read is sequential when it extends
/// any recently active stream by one page. This matters for the paper's §3
/// observation that index-nested-loop probes over c-tables arrive in
/// strictly ascending page order and therefore do NOT pay a seek per probe,
/// even though a naive cost model assumes they would.
///
/// Thread-safe: a single mutex guards the page directory, the stream
/// classifier and the global counters, so per-read classification and
/// accounting stay exact (serialized, like a real drive head) no matter how
/// many sessions or workers issue I/O concurrently. Per-query totals are
/// exact via IoSink; the sequential/random *split* of interleaved streams
/// depends on arrival order, exactly as it would on hardware.
class DiskManager {
 public:
  /// When `heatmap` is non-null, every read/write is additionally recorded
  /// there — attributed to the calling thread's AccessScope label, under the
  /// same critical section that bumps the global counters, so per-object
  /// totals sum exactly to stats().
  explicit DiskManager(obs::AccessHeatmap* heatmap = nullptr)
      : heatmap_(heatmap) {}

  /// Number of concurrent sequential streams the classifier tracks.
  static constexpr int kReadStreams = 8;

  DiskManager(const DiskManager&) = delete;
  DiskManager& operator=(const DiskManager&) = delete;

  /// Allocates a fresh zeroed page and returns its id.
  page_id_t AllocatePage();

  /// Reads a page into `dest` (kPageSize bytes).
  Status ReadPage(page_id_t page_id, char* dest);

  /// Writes a page from `src` (kPageSize bytes).
  Status WritePage(page_id_t page_id, const char* src);

  /// Number of allocated pages.
  uint32_t NumPages() const {
    MutexLock lock(mu_);
    return static_cast<uint32_t>(pages_.size());
  }

  /// Snapshot of the global counters (copied under the lock).
  IoStats stats() const {
    MutexLock lock(mu_);
    return stats_;
  }
  void ResetStats() {
    MutexLock lock(mu_);
    stats_ = IoStats{};
    for (int i = 0; i < kReadStreams; i++) streams_[i] = StreamPos{};
    clock_ = 0;
  }

 private:
  struct StreamPos {
    page_id_t last_page = kInvalidPageId - 1;
    uint64_t last_used = 0;
  };

  obs::AccessHeatmap* const heatmap_;
  mutable Mutex mu_;
  std::vector<std::unique_ptr<char[]>> pages_ GUARDED_BY(mu_);
  IoStats stats_ GUARDED_BY(mu_);
  StreamPos streams_[kReadStreams] GUARDED_BY(mu_);
  uint64_t clock_ GUARDED_BY(mu_) = 0;
};

}  // namespace elephant
