#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/config.h"
#include "common/status.h"

namespace elephant {

/// Counters describing physical I/O traffic observed at the disk layer.
struct IoStats {
  uint64_t sequential_reads = 0;  ///< page reads contiguous with the previous read
  uint64_t random_reads = 0;      ///< page reads requiring a head seek
  uint64_t page_writes = 0;

  uint64_t TotalReads() const { return sequential_reads + random_reads; }

  IoStats operator-(const IoStats& o) const {
    IoStats r;
    r.sequential_reads = sequential_reads - o.sequential_reads;
    r.random_reads = random_reads - o.random_reads;
    r.page_writes = page_writes - o.page_writes;
    return r;
  }
};

/// Analytical model of a spinning disk, used to convert IoStats into seconds.
/// Defaults approximate the paper's 7200 RPM SATA drive: average positioning
/// time (seek + half rotation) and a sustained sequential transfer rate.
struct DiskModel {
  double seek_seconds = 0.0085;            ///< average seek + rotational latency
  double transfer_bytes_per_sec = 100e6;   ///< sustained sequential bandwidth

  /// Seconds to serve the given traffic: every random read pays a seek plus a
  /// page transfer; sequential reads pay transfer only.
  double Seconds(const IoStats& s) const {
    const double page_xfer = static_cast<double>(kPageSize) / transfer_bytes_per_sec;
    return static_cast<double>(s.random_reads) * (seek_seconds + page_xfer) +
           static_cast<double>(s.sequential_reads) * page_xfer;
  }

  /// Seconds to sequentially read `bytes` from disk (used by the ColOpt
  /// lower-bound model: time to just scan the compressed column data).
  double SequentialReadSeconds(uint64_t bytes) const {
    const uint64_t pages = (bytes + kPageSize - 1) / kPageSize;
    return seek_seconds +  // one initial positioning
           static_cast<double>(pages) * kPageSize / transfer_bytes_per_sec;
  }
};

/// An in-memory simulated disk. Pages live in RAM, but every read/write is
/// accounted for and classified sequential vs. random so that a DiskModel can
/// report the time a real spinning disk would have taken. This stands in for
/// the paper's 250 GB SATA drive and makes experiments deterministic.
///
/// Classification tracks a small set of concurrent read streams (modeling
/// drive readahead / command queueing): a read is sequential when it extends
/// any recently active stream by one page. This matters for the paper's §3
/// observation that index-nested-loop probes over c-tables arrive in
/// strictly ascending page order and therefore do NOT pay a seek per probe,
/// even though a naive cost model assumes they would.
class DiskManager {
 public:
  DiskManager() = default;

  /// Number of concurrent sequential streams the classifier tracks.
  static constexpr int kReadStreams = 8;

  DiskManager(const DiskManager&) = delete;
  DiskManager& operator=(const DiskManager&) = delete;

  /// Allocates a fresh zeroed page and returns its id.
  page_id_t AllocatePage();

  /// Reads a page into `dest` (kPageSize bytes).
  Status ReadPage(page_id_t page_id, char* dest);

  /// Writes a page from `src` (kPageSize bytes).
  Status WritePage(page_id_t page_id, const char* src);

  /// Number of allocated pages.
  uint32_t NumPages() const { return static_cast<uint32_t>(pages_.size()); }

  const IoStats& stats() const { return stats_; }
  void ResetStats() {
    stats_ = IoStats{};
    for (int i = 0; i < kReadStreams; i++) streams_[i] = StreamPos{};
    clock_ = 0;
  }

 private:
  struct StreamPos {
    page_id_t last_page = kInvalidPageId - 1;
    uint64_t last_used = 0;
  };

  std::vector<std::unique_ptr<char[]>> pages_;
  IoStats stats_;
  StreamPos streams_[kReadStreams];
  uint64_t clock_ = 0;
};

}  // namespace elephant
