#pragma once

#include <algorithm>
#include <cstdint>

#include "common/thread_annotations.h"

namespace elephant {

/// Describes one simulated storage failure. The injector counts *durable
/// ops* — page writes reaching the disk and WAL flushes — and fires at the
/// `crash_after_ops`-th one (1-based), after which every durable op fails as
/// if the process had been killed. The crash-recovery matrix sweeps
/// `crash_after_ops` across a workload to exercise every interleaving of
/// page and log persistence.
struct FaultPlan {
  enum class Mode {
    kNone,           ///< no faults
    kCrashAtWrite,   ///< drop the Nth durable op and die
    kTornLogFlush,   ///< the Nth durable op, if a log flush, persists only a
                     ///< prefix of the flushed bytes (a torn/short write),
                     ///< then dies — recovery must truncate at the bad CRC
    kDropFsync,      ///< fsyncs after `drop_fsync_after` silently do nothing
                     ///< (a lying drive); the WAL rule must keep the on-disk
                     ///< state consistent as of the last real fsync
  };

  Mode mode = Mode::kNone;
  uint64_t crash_after_ops = 0;   ///< 1-based durable-op index to crash at (0 = never)
  uint32_t torn_keep_bytes = 0;   ///< kTornLogFlush: bytes of the final flush kept
  uint64_t drop_fsync_after = 0;  ///< kDropFsync: fsyncs after this count are dropped
};

/// Thread-safe fault-injection state shared between the DiskManager (page
/// writes, fsyncs) and the LogManager (log flushes). Once `crashed()` the
/// simulated machine is dead: all durable ops fail until the test clones the
/// durable image and reopens.
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan) : plan_(plan) {}

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Consulted before a page write reaches the backing store. Returns false
  /// when the write must be dropped (machine crashed at or before this op).
  bool OnPageWrite() {
    MutexLock lock(mu_);
    if (crashed_) return false;
    if (plan_.mode == FaultPlan::Mode::kNone) return true;
    ops_++;
    if (HitCrashPoint() && plan_.mode != FaultPlan::Mode::kTornLogFlush) {
      crashed_ = true;
      return false;
    }
    return true;
  }

  /// Consulted before `len` freshly flushed WAL bytes become durable.
  /// Returns how many of them actually persist: `len` on success, a shorter
  /// prefix for a torn final flush, 0 when the machine is dead.
  uint64_t OnLogFlush(uint64_t len) {
    MutexLock lock(mu_);
    if (crashed_) return 0;
    if (plan_.mode == FaultPlan::Mode::kNone) return len;
    ops_++;
    if (HitCrashPoint()) {
      crashed_ = true;
      if (plan_.mode == FaultPlan::Mode::kTornLogFlush) {
        return std::min<uint64_t>(plan_.torn_keep_bytes, len);
      }
      return 0;
    }
    return len;
  }

  /// Consulted on fsync. Returns false when the sync is dropped (either the
  /// machine is dead or the kDropFsync threshold has passed); a dropped sync
  /// must not advance any durability watermark.
  bool OnSync() {
    MutexLock lock(mu_);
    if (crashed_) return false;
    if (plan_.mode == FaultPlan::Mode::kDropFsync && plan_.drop_fsync_after != 0) {
      syncs_++;
      if (syncs_ > plan_.drop_fsync_after) return false;
    }
    return true;
  }

  /// Consulted before a page read is served. Reads normally survive a crash
  /// plan (the platter is intact, only new durability is lost); they fail
  /// only while `FailReads(true)` is armed — a dying disk surface. Exists so
  /// tests can force failures on paths that only read (e.g. rollback undo
  /// re-fetching an evicted heap page) and prove those errors are surfaced.
  bool OnPageRead() {
    MutexLock lock(mu_);
    return !fail_reads_;
  }

  /// Arms/disarms read failures (independent of the crash plan).
  void FailReads(bool fail) {
    MutexLock lock(mu_);
    fail_reads_ = fail;
  }

  bool crashed() const {
    MutexLock lock(mu_);
    return crashed_;
  }

  /// Durable ops observed so far (page writes + log flushes). A fault-free
  /// run's total bounds the useful `crash_after_ops` sweep range.
  uint64_t ops() const {
    MutexLock lock(mu_);
    return ops_;
  }

 private:
  bool HitCrashPoint() const REQUIRES(mu_) {
    return plan_.crash_after_ops != 0 && ops_ >= plan_.crash_after_ops;
  }

  const FaultPlan plan_;
  mutable Mutex mu_{LockRank::kFaultInjector, "FaultInjector::mu_"};
  uint64_t ops_ GUARDED_BY(mu_) = 0;
  uint64_t syncs_ GUARDED_BY(mu_) = 0;
  bool crashed_ GUARDED_BY(mu_) = false;
  bool fail_reads_ GUARDED_BY(mu_) = false;
};

}  // namespace elephant
