#include "storage/disk_manager.h"

#include <cstring>

namespace elephant {

page_id_t DiskManager::AllocatePage() {
  auto page = std::make_unique<char[]>(kPageSize);
  std::memset(page.get(), 0, kPageSize);
  pages_.push_back(std::move(page));
  return static_cast<page_id_t>(pages_.size() - 1);
}

Status DiskManager::ReadPage(page_id_t page_id, char* dest) {
  if (page_id < 0 || static_cast<size_t>(page_id) >= pages_.size()) {
    return Status::OutOfRange("read of unallocated page " + std::to_string(page_id));
  }
  clock_++;
  int hit = -1;
  int lru = 0;
  for (int i = 0; i < kReadStreams; i++) {
    // A stream continues when the new page extends it (same page counts
    // too: a re-read the cache dropped but the drive buffer still holds).
    if (page_id == streams_[i].last_page + 1 || page_id == streams_[i].last_page) {
      hit = i;
      break;
    }
    if (streams_[i].last_used < streams_[lru].last_used) lru = i;
  }
  if (hit >= 0) {
    stats_.sequential_reads++;
    streams_[hit].last_page = page_id;
    streams_[hit].last_used = clock_;
  } else {
    stats_.random_reads++;
    streams_[lru].last_page = page_id;
    streams_[lru].last_used = clock_;
  }
  std::memcpy(dest, pages_[page_id].get(), kPageSize);
  return Status::OK();
}

Status DiskManager::WritePage(page_id_t page_id, const char* src) {
  if (page_id < 0 || static_cast<size_t>(page_id) >= pages_.size()) {
    return Status::OutOfRange("write of unallocated page " + std::to_string(page_id));
  }
  stats_.page_writes++;
  std::memcpy(pages_[page_id].get(), src, kPageSize);
  return Status::OK();
}

}  // namespace elephant
