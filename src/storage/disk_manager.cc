#include "storage/disk_manager.h"

#include <cstring>

#include "obs/heatmap.h"
#include "obs/trace_log.h"
#include "obs/wait_events.h"
#include "storage/fault_injection.h"

namespace elephant {

namespace {
thread_local IoSink* t_current_sink = nullptr;
}  // namespace

IoSink* CurrentIoSink() { return t_current_sink; }

IoScope::IoScope(IoSink* sink) : prev_(t_current_sink) { t_current_sink = sink; }

IoScope::~IoScope() { t_current_sink = prev_; }

page_id_t DiskManager::AllocatePage() {
  auto page = std::make_unique<char[]>(kPageSize);
  std::memset(page.get(), 0, kPageSize);
  MutexLock lock(mu_);
  pages_.push_back(std::move(page));
  return static_cast<page_id_t>(pages_.size() - 1);
}

void DiskManager::MaybeExtendWindow(StreamPos* s, uint64_t* windows_issued,
                                    uint64_t* pages_prefetched) {
  if (!readahead_enabled_) return;
  if (s->buffered_until < s->last_page) s->buffered_until = s->last_page;
  const page_id_t staged_ahead = s->buffered_until - s->last_page;
  if (staged_ahead >= static_cast<page_id_t>(readahead_pages_ / 2) &&
      staged_ahead > 0) {
    return;  // more than half a window still staged; no transfer yet
  }
  const page_id_t extent_end = static_cast<page_id_t>(pages_.size()) - 1;
  page_id_t want = s->last_page + static_cast<page_id_t>(readahead_pages_);
  if (want > extent_end) want = extent_end;
  if (want <= s->buffered_until) return;  // at the end of the extent
  *windows_issued += 1;
  *pages_prefetched += static_cast<uint64_t>(want - s->buffered_until);
  s->buffered_until = want;
}

Status DiskManager::ReadPage(page_id_t page_id, char* dest,
                             AccessIntent intent) {
  // Opened before the device mutex on purpose: queueing on the (serialized)
  // drive is part of the I/O wait — iowait semantics — so the contended
  // LWLock:DiskManager event rarely fires and the whole operation counts
  // once under IO.
  obs::WaitScope wait(obs::WaitEventId::kIoDataFileRead);
  bool sequential;
  bool prefetch_hit = false;
  ReadaheadStats ra_delta;
  {
    MutexLock lock(mu_);
    if (page_id < 0 || static_cast<size_t>(page_id) >= pages_.size()) {
      return Status::OutOfRange("read of unallocated page " +
                                std::to_string(page_id));
    }
    if (injector_ != nullptr && !injector_->OnPageRead()) {
      return Status::IoError("injected read fault on page " +
                             std::to_string(page_id));
    }
    clock_++;
    int hit = -1;
    int lru = 0;
    for (int i = 0; i < kReadStreams; i++) {
      // A stream continues when the new page extends it (same page counts
      // too: a re-read the cache dropped but the drive buffer still holds),
      // or when the page is anywhere inside the stream's staged prefetch
      // window — forward skips over staged pages stay on-stream.
      if (page_id == streams_[i].last_page + 1 ||
          page_id == streams_[i].last_page ||
          (page_id > streams_[i].last_page &&
           page_id <= streams_[i].buffered_until)) {
        hit = i;
        break;
      }
      if (streams_[i].last_used < streams_[lru].last_used) lru = i;
    }
    sequential = hit >= 0;
    if (sequential) {
      StreamPos& s = streams_[hit];
      if (page_id > s.last_page && page_id <= s.buffered_until) {
        // Served from the prefetch window; staged pages the stream skipped
        // over were transferred for nothing.
        prefetch_hit = true;
        ra_delta.prefetch_hits++;
        ra_delta.prefetch_wasted +=
            static_cast<uint64_t>(page_id - s.last_page - 1);
      }
      stats_.sequential_reads++;
      s.last_page = page_id;
      s.last_used = clock_;
      MaybeExtendWindow(&s, &ra_delta.windows_issued,
                        &ra_delta.pages_prefetched);
    } else {
      stats_.random_reads++;
      StreamPos& s = streams_[lru];
      // Whatever the recycled stream had staged will never be consumed.
      if (s.buffered_until > s.last_page) {
        ra_delta.prefetch_wasted +=
            static_cast<uint64_t>(s.buffered_until - s.last_page);
      }
      s.last_page = page_id;
      s.buffered_until = page_id;
      s.last_used = clock_;
      if (intent == AccessIntent::kSequentialScan) {
        // The plan says a scan starts here: stage the window right away so
        // the next demanded pages stream from the drive buffer.
        MaybeExtendWindow(&s, &ra_delta.windows_issued,
                          &ra_delta.pages_prefetched);
      }
    }
    stats_.readahead.windows_issued += ra_delta.windows_issued;
    stats_.readahead.pages_prefetched += ra_delta.pages_prefetched;
    stats_.readahead.prefetch_hits += ra_delta.prefetch_hits;
    stats_.readahead.prefetch_wasted += ra_delta.prefetch_wasted;
    // Inside the critical section so the per-object heatmap totals track the
    // global counters exactly at every instant (test-enforced equality).
    if (heatmap_ != nullptr) {
      heatmap_->RecordRead(obs::CurrentAccessLabel(), sequential, prefetch_hit);
    }
    std::memcpy(dest, pages_[page_id].get(), kPageSize);
  }
  if (!sequential && obs::TraceLog::Global().enabled()) {
    obs::TraceLog::Global().Instant(
        "disk.seek", "io",
        {{"page", std::to_string(page_id)},
         {"object", obs::CurrentAccessLabel()}});
  }
  if (IoSink* sink = CurrentIoSink()) {
    // Attribute with the classification the (serialized) drive chose.
    if (sequential) {
      sink->sequential_reads.fetch_add(1, std::memory_order_relaxed);
    } else {
      sink->random_reads.fetch_add(1, std::memory_order_relaxed);
    }
    if (ra_delta.windows_issued != 0) {
      sink->readahead_windows.fetch_add(ra_delta.windows_issued,
                                        std::memory_order_relaxed);
    }
    if (ra_delta.pages_prefetched != 0) {
      sink->pages_prefetched.fetch_add(ra_delta.pages_prefetched,
                                       std::memory_order_relaxed);
    }
    if (ra_delta.prefetch_hits != 0) {
      sink->prefetch_hits.fetch_add(ra_delta.prefetch_hits,
                                    std::memory_order_relaxed);
    }
    if (ra_delta.prefetch_wasted != 0) {
      sink->prefetch_wasted.fetch_add(ra_delta.prefetch_wasted,
                                      std::memory_order_relaxed);
    }
  }
  return Status::OK();
}

Status DiskManager::WritePage(page_id_t page_id, const char* src) {
  obs::WaitScope wait(obs::WaitEventId::kIoDataFileWrite);
  {
    MutexLock lock(mu_);
    if (page_id < 0 || static_cast<size_t>(page_id) >= pages_.size()) {
      return Status::OutOfRange("write of unallocated page " +
                                std::to_string(page_id));
    }
    if (injector_ != nullptr && !injector_->OnPageWrite()) {
      return Status::IoError("simulated crash: page write " +
                             std::to_string(page_id) + " dropped");
    }
    stats_.page_writes++;
    if (heatmap_ != nullptr) {
      heatmap_->RecordWrite(obs::CurrentAccessLabel());
    }
    // Writes go straight to the backing store; a staged prefetch window over
    // the written page stays coherent because the window is bookkeeping only
    // (reads always copy from pages_).
    std::memcpy(pages_[page_id].get(), src, kPageSize);
  }
  if (IoSink* sink = CurrentIoSink()) {
    sink->page_writes.fetch_add(1, std::memory_order_relaxed);
  }
  return Status::OK();
}

Status DiskManager::Sync() {
  // Inert when the caller is a WAL group flush (kWalFlush is already
  // timing); standalone syncs (checkpoints) count as IO.
  obs::WaitScope wait(obs::WaitEventId::kIoDataFileSync);
  MutexLock lock(mu_);
  stats_.fsyncs++;
  if (injector_ != nullptr && !injector_->OnSync()) {
    return Status::IoError("simulated crash: fsync dropped");
  }
  return Status::OK();
}

std::vector<std::string> DiskManager::ClonePages() const {
  MutexLock lock(mu_);
  std::vector<std::string> out;
  out.reserve(pages_.size());
  for (const auto& p : pages_) out.emplace_back(p.get(), kPageSize);
  return out;
}

Status DiskManager::RestorePages(const std::vector<std::string>& pages) {
  MutexLock lock(mu_);
  if (!pages_.empty()) {
    return Status::FailedPrecondition(
        "RestorePages on a disk that already allocated pages");
  }
  for (const auto& src : pages) {
    auto page = std::make_unique<char[]>(kPageSize);
    std::memset(page.get(), 0, kPageSize);
    std::memcpy(page.get(), src.data(),
                src.size() < kPageSize ? src.size() : kPageSize);
    pages_.push_back(std::move(page));
  }
  return Status::OK();
}

}  // namespace elephant
