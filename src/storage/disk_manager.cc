#include "storage/disk_manager.h"

#include <cstring>

#include "obs/heatmap.h"
#include "obs/trace_log.h"

namespace elephant {

namespace {
thread_local IoSink* t_current_sink = nullptr;
}  // namespace

IoSink* CurrentIoSink() { return t_current_sink; }

IoScope::IoScope(IoSink* sink) : prev_(t_current_sink) { t_current_sink = sink; }

IoScope::~IoScope() { t_current_sink = prev_; }

page_id_t DiskManager::AllocatePage() {
  auto page = std::make_unique<char[]>(kPageSize);
  std::memset(page.get(), 0, kPageSize);
  MutexLock lock(mu_);
  pages_.push_back(std::move(page));
  return static_cast<page_id_t>(pages_.size() - 1);
}

Status DiskManager::ReadPage(page_id_t page_id, char* dest) {
  bool sequential;
  {
    MutexLock lock(mu_);
    if (page_id < 0 || static_cast<size_t>(page_id) >= pages_.size()) {
      return Status::OutOfRange("read of unallocated page " +
                                std::to_string(page_id));
    }
    clock_++;
    int hit = -1;
    int lru = 0;
    for (int i = 0; i < kReadStreams; i++) {
      // A stream continues when the new page extends it (same page counts
      // too: a re-read the cache dropped but the drive buffer still holds).
      if (page_id == streams_[i].last_page + 1 || page_id == streams_[i].last_page) {
        hit = i;
        break;
      }
      if (streams_[i].last_used < streams_[lru].last_used) lru = i;
    }
    sequential = hit >= 0;
    if (sequential) {
      stats_.sequential_reads++;
      streams_[hit].last_page = page_id;
      streams_[hit].last_used = clock_;
    } else {
      stats_.random_reads++;
      streams_[lru].last_page = page_id;
      streams_[lru].last_used = clock_;
    }
    // Inside the critical section so the per-object heatmap totals track the
    // global counters exactly at every instant (test-enforced equality).
    if (heatmap_ != nullptr) {
      heatmap_->RecordRead(obs::CurrentAccessLabel(), sequential);
    }
    std::memcpy(dest, pages_[page_id].get(), kPageSize);
  }
  if (!sequential && obs::TraceLog::Global().enabled()) {
    obs::TraceLog::Global().Instant(
        "disk.seek", "io",
        {{"page", std::to_string(page_id)},
         {"object", obs::CurrentAccessLabel()}});
  }
  if (IoSink* sink = CurrentIoSink()) {
    // Attribute with the classification the (serialized) drive chose.
    if (sequential) {
      sink->sequential_reads.fetch_add(1, std::memory_order_relaxed);
    } else {
      sink->random_reads.fetch_add(1, std::memory_order_relaxed);
    }
  }
  return Status::OK();
}

Status DiskManager::WritePage(page_id_t page_id, const char* src) {
  {
    MutexLock lock(mu_);
    if (page_id < 0 || static_cast<size_t>(page_id) >= pages_.size()) {
      return Status::OutOfRange("write of unallocated page " +
                                std::to_string(page_id));
    }
    stats_.page_writes++;
    if (heatmap_ != nullptr) {
      heatmap_->RecordWrite(obs::CurrentAccessLabel());
    }
    std::memcpy(pages_[page_id].get(), src, kPageSize);
  }
  if (IoSink* sink = CurrentIoSink()) {
    sink->page_writes.fetch_add(1, std::memory_order_relaxed);
  }
  return Status::OK();
}

}  // namespace elephant
