#include "storage/slotted_page.h"

#include <cstring>

namespace elephant {

uint16_t SlottedPage::GetU16(uint32_t off) const {
  return static_cast<uint16_t>(static_cast<unsigned char>(data_[off]) |
                               (static_cast<unsigned char>(data_[off + 1]) << 8));
}
void SlottedPage::PutU16(uint32_t off, uint16_t v) {
  data_[off] = static_cast<char>(v & 0xff);
  data_[off + 1] = static_cast<char>((v >> 8) & 0xff);
}
int32_t SlottedPage::GetI32(uint32_t off) const {
  uint32_t v = 0;
  for (int i = 0; i < 4; i++) {
    v |= static_cast<uint32_t>(static_cast<unsigned char>(data_[off + i])) << (8 * i);
  }
  return static_cast<int32_t>(v);
}
void SlottedPage::PutI32(uint32_t off, int32_t v) {
  for (int i = 0; i < 4; i++) data_[off + i] = static_cast<char>((v >> (8 * i)) & 0xff);
}

void SlottedPage::Init() {
  PutU16(0, 0);                      // slot_count
  PutU16(2, kPageSize);              // free_ptr (data grows down from page end)
  PutI32(4, kInvalidPageId);         // next_page
  SetPageLsn(kInvalidLsn);
}

uint16_t SlottedPage::SlotCount() const { return GetU16(0); }
page_id_t SlottedPage::NextPageId() const { return GetI32(4); }
void SlottedPage::SetNextPageId(page_id_t id) { PutI32(4, id); }

lsn_t SlottedPage::PageLsn() const {
  uint64_t v = 0;
  for (int i = 0; i < 8; i++) {
    v |= static_cast<uint64_t>(static_cast<unsigned char>(data_[8 + i])) << (8 * i);
  }
  return v;
}
void SlottedPage::SetPageLsn(lsn_t lsn) {
  for (int i = 0; i < 8; i++) data_[8 + i] = static_cast<char>((lsn >> (8 * i)) & 0xff);
}

uint32_t SlottedPage::FreeSpace() const {
  const uint32_t slots_end = kHeaderBytes + SlotCount() * kSlotBytes;
  const uint32_t free_ptr = GetU16(2);
  if (free_ptr < slots_end + kSlotBytes) return 0;
  return free_ptr - slots_end - kSlotBytes;
}

Result<slot_id_t> SlottedPage::Insert(std::string_view record) {
  if (record.size() > FreeSpace()) {
    return Status::ResourceExhausted("page full");
  }
  const uint16_t count = SlotCount();
  const uint16_t free_ptr = GetU16(2);
  const uint16_t new_off = static_cast<uint16_t>(free_ptr - record.size());
  std::memcpy(data_ + new_off, record.data(), record.size());
  PutU16(kHeaderBytes + count * kSlotBytes, new_off);
  PutU16(kHeaderBytes + count * kSlotBytes + 2, static_cast<uint16_t>(record.size()));
  PutU16(0, count + 1);
  PutU16(2, new_off);
  return static_cast<slot_id_t>(count);
}

Result<std::string_view> SlottedPage::Get(slot_id_t slot) const {
  if (slot >= SlotCount()) return Status::NotFound("slot out of range");
  const uint16_t len = SlotLength(slot);
  if (len == 0) return Status::NotFound("deleted slot");
  return std::string_view(data_ + SlotOffset(slot), len);
}

Status SlottedPage::Delete(slot_id_t slot) {
  if (slot >= SlotCount()) return Status::NotFound("slot out of range");
  PutU16(kHeaderBytes + slot * kSlotBytes + 2, 0);
  return Status::OK();
}

Status SlottedPage::Update(slot_id_t slot, std::string_view record) {
  if (slot >= SlotCount()) return Status::NotFound("slot out of range");
  const uint16_t len = SlotLength(slot);
  if (len == 0) return Status::NotFound("deleted slot");
  if (record.size() > len) {
    return Status::ResourceExhausted("in-place update larger than record");
  }
  std::memcpy(data_ + SlotOffset(slot), record.data(), record.size());
  if (record.size() < len) {
    PutU16(kHeaderBytes + slot * kSlotBytes + 2, static_cast<uint16_t>(record.size()));
  }
  return Status::OK();
}

Status SlottedPage::Restore(slot_id_t slot, std::string_view record) {
  if (slot >= SlotCount()) return Status::NotFound("slot out of range");
  const uint32_t off = SlotOffset(slot);
  if (off + record.size() > kPageSize) {
    return Status::Corruption("restore image exceeds page bounds");
  }
  std::memcpy(data_ + off, record.data(), record.size());
  PutU16(kHeaderBytes + slot * kSlotBytes + 2, static_cast<uint16_t>(record.size()));
  return Status::OK();
}

}  // namespace elephant
