#pragma once

#include <utility>

#include "common/config.h"

namespace elephant {

class BufferPool;
class Frame;

/// Move-only RAII pin holder: releases its pin on destruction (exactly once),
/// propagating dirtiness recorded via MarkDirty(). This is the ONLY way
/// engine code outside the buffer pool may hold a page: bare FetchPage /
/// UnpinPage pairs are banned by scripts/elephant_lint.py, so a pin leak —
/// which would silently freeze a frame and corrupt the paper's page-level
/// I/O accounting — is impossible by construction.
///
/// Obtain one with BufferPool::FetchPageGuarded / NewPageGuarded.
class PageGuard {
 public:
  PageGuard() = default;
  /// Adopts an already-pinned frame (buffer-pool internal; engine code never
  /// constructs a guard from a raw frame).
  PageGuard(BufferPool* pool, page_id_t page_id, Frame* frame)
      : pool_(pool), page_id_(page_id), frame_(frame) {}
  ~PageGuard() { Release(); }

  PageGuard(const PageGuard&) = delete;
  PageGuard& operator=(const PageGuard&) = delete;
  PageGuard(PageGuard&& o) noexcept { *this = std::move(o); }
  PageGuard& operator=(PageGuard&& o) noexcept {
    if (this != &o) {
      Release();
      pool_ = o.pool_;
      page_id_ = o.page_id_;
      frame_ = o.frame_;
      dirty_ = o.dirty_;
      o.pool_ = nullptr;
      o.frame_ = nullptr;
      o.dirty_ = false;
    }
    return *this;
  }

  /// True while this guard holds a pin.
  bool valid() const { return frame_ != nullptr; }
  page_id_t page_id() const { return page_id_; }

  /// The frame's raw kPageSize bytes. Only call while valid().
  char* data();
  const char* data() const;

  /// Records that the page was modified; the frame is marked dirty when the
  /// pin is released (write-back happens on eviction or FlushAll).
  void MarkDirty() { dirty_ = true; }
  bool dirty() const { return dirty_; }

  /// Releases the pin early (idempotent; the destructor is then a no-op).
  void Release();

 private:
  BufferPool* pool_ = nullptr;
  page_id_t page_id_ = kInvalidPageId;
  Frame* frame_ = nullptr;
  bool dirty_ = false;
};

}  // namespace elephant
