#pragma once

#include <string>
#include <string_view>

#include "common/config.h"
#include "common/status.h"
#include "storage/buffer_pool.h"
#include "storage/slotted_page.h"

namespace elephant {

/// An unordered heap of serialized tuples stored as a singly linked chain of
/// slotted pages. Appends go to the tail page. This is the base storage of
/// every plain table (the clustered-index organization lives in index/).
class TableHeap {
 public:
  /// Creates a fresh heap with one empty page.
  static Result<TableHeap> Create(BufferPool* pool);

  /// Opens an existing heap rooted at `first_page`.
  TableHeap(BufferPool* pool, page_id_t first_page, page_id_t last_page)
      : pool_(pool), first_page_(first_page), last_page_(last_page) {}

  /// Appends a serialized tuple, returning its Rid.
  Result<Rid> Insert(std::string_view record);

  /// Fetches the tuple at `rid` into `out`.
  Status Get(const Rid& rid, std::string* out) const;

  /// Deletes the tuple at `rid`.
  Status Delete(const Rid& rid);

  page_id_t first_page() const { return first_page_; }
  page_id_t last_page() const { return last_page_; }

  BufferPool* pool() const { return pool_; }

  /// Updates the cached tail after a new page was chained on externally
  /// (the WAL-logged append path in src/wal/heap_ops grows the chain with
  /// logged PageInit/PageLink records and then records the new tail here).
  void set_last_page(page_id_t id) { last_page_ = id; }

  /// Re-derives the tail by walking the page chain from the head. Used after
  /// crash recovery: redo may have chained pages past the tail the catalog
  /// checkpointed.
  Status RefreshLastPage();

  /// Forward iterator over all live tuples, page by page (sequential I/O).
  class Iterator {
   public:
    Iterator(BufferPool* pool, page_id_t page_id);

    /// True when positioned on a tuple.
    bool Valid() const { return valid_; }
    /// Advances to the next live tuple.
    Status Next();
    /// Current tuple bytes (valid until the next call to Next()).
    const std::string& record() const { return record_; }
    Rid rid() const { return rid_; }

   private:
    friend class TableHeap;
    /// Loads the tuple at (page_, slot_) or advances across pages until one
    /// is found; sets valid_=false at end of heap.
    Status SeekToLive();

    BufferPool* pool_;
    page_id_t page_ = kInvalidPageId;
    slot_id_t slot_ = 0;
    bool valid_ = false;
    std::string record_;
    Rid rid_;
  };

  Result<Iterator> Begin() const;

 private:
  BufferPool* pool_;
  page_id_t first_page_;
  page_id_t last_page_;
};

}  // namespace elephant
