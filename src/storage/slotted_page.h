#pragma once

#include <cstdint>
#include <string_view>

#include "common/config.h"
#include "common/status.h"

namespace elephant {

/// A view over one kPageSize buffer laid out as a classic slotted page:
///
///   [u16 slot_count][u16 free_ptr][i32 next_page][u64 page_lsn]  (16-byte header)
///   [slot 0][slot 1]...                                 (grow upward)
///   ...free space...
///   [tuple data]                                        (grows downward)
///
/// Each slot is {u16 offset, u16 length}; length == 0 marks a deleted slot.
/// The view does not own the buffer; it is typically backed by a pinned
/// buffer-pool frame.
///
/// `page_lsn` records the LSN of the last WAL record applied to the page;
/// recovery redo is idempotent because it skips records with lsn <= page_lsn.
/// Pages written outside the WAL path keep page_lsn == kInvalidLsn.
class SlottedPage {
 public:
  explicit SlottedPage(char* data) : data_(data) {}

  /// Formats a fresh page (empty, no next page, page_lsn = kInvalidLsn).
  void Init();

  uint16_t SlotCount() const;
  page_id_t NextPageId() const;
  void SetNextPageId(page_id_t id);

  /// LSN of the last log record applied to this page (WAL mode only).
  /// SetPageLsn is part of the WAL protocol: callers outside src/wal/ and
  /// src/txn/ are rejected by elephant_lint (rule wal-protocol).
  lsn_t PageLsn() const;
  void SetPageLsn(lsn_t lsn);

  /// Free bytes available for a new tuple (accounting for its slot entry).
  uint32_t FreeSpace() const;

  /// Inserts a record, returning its slot id, or ResourceExhausted when the
  /// page is full.
  Result<slot_id_t> Insert(std::string_view record);

  /// Returns the record stored at `slot` (NotFound for deleted/oob slots).
  Result<std::string_view> Get(slot_id_t slot) const;

  /// Marks the slot deleted. Space is not compacted (fine for this engine:
  /// heaps are append-mostly and rebuilt wholesale).
  Status Delete(slot_id_t slot);

  /// Replaces the record in place when the new payload is not larger;
  /// returns ResourceExhausted otherwise (caller should delete+reinsert).
  Status Update(slot_id_t slot, std::string_view record);

  /// Rewrites `slot` with `record` at its original offset, resurrecting a
  /// deleted or shrunk slot. Only valid for the byte image the slot held at
  /// some earlier time (space below free_ptr is never compacted or reused,
  /// so the original allocation is still intact). Used by WAL undo/redo to
  /// reverse deletes and in-place updates.
  Status Restore(slot_id_t slot, std::string_view record);

 private:
  static constexpr uint32_t kHeaderBytes = 16;
  static constexpr uint32_t kSlotBytes = 4;

  uint16_t GetU16(uint32_t off) const;
  void PutU16(uint32_t off, uint16_t v);
  int32_t GetI32(uint32_t off) const;
  void PutI32(uint32_t off, int32_t v);

  uint16_t SlotOffset(slot_id_t s) const { return GetU16(kHeaderBytes + s * kSlotBytes); }
  uint16_t SlotLength(slot_id_t s) const {
    return GetU16(kHeaderBytes + s * kSlotBytes + 2);
  }

  char* data_;
};

}  // namespace elephant
