#include "storage/buffer_pool.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>

#include "obs/heatmap.h"
#include "obs/trace_log.h"

namespace elephant {

BufferPool::BufferPool(DiskManager* disk, uint32_t capacity_pages,
                       obs::AccessHeatmap* heatmap)
    : disk_(disk), capacity_(capacity_pages), heatmap_(heatmap) {
  MutexLock lock(latch_);
  frames_.resize(capacity_);
  free_frames_.reserve(capacity_);
  for (uint32_t i = 0; i < capacity_; i++) {
    frames_[i].data_ = std::make_unique<char[]>(kPageSize);
    free_frames_.push_back(capacity_ - 1 - i);  // hand out low indices first
  }
}

void BufferPool::Touch(size_t frame_idx) {
  auto it = lru_pos_.find(frame_idx);
  if (it != lru_pos_.end()) lru_.erase(it->second);
  lru_.push_front(frame_idx);
  lru_pos_[frame_idx] = lru_.begin();
}

Status BufferPool::FlushFrame(size_t i) {
  Frame& f = frames_[i];
  if (f.dirty_ && f.page_id_ != kInvalidPageId) {
    ELE_RETURN_NOT_OK(disk_->WritePage(f.page_id_, f.data()));
    f.dirty_ = false;
  }
  return Status::OK();
}

Result<size_t> BufferPool::GetVictimFrame() {
  if (!free_frames_.empty()) {
    size_t idx = free_frames_.back();
    free_frames_.pop_back();
    return idx;
  }
  // Evict the least-recently-used unpinned frame.
  for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
    size_t idx = *it;
    if (frames_[idx].pin_count_ == 0) {
      ELE_RETURN_NOT_OK(FlushFrame(idx));
      page_table_.erase(frames_[idx].page_id_);
      lru_.erase(lru_pos_[idx]);
      lru_pos_.erase(idx);
      frames_[idx].page_id_ = kInvalidPageId;
      stats_.evictions++;
      return idx;
    }
  }
  return Status::ResourceExhausted("buffer pool: all frames pinned");
}

Result<PageGuard> BufferPool::FetchPageGuarded(page_id_t page_id) {
  ELE_ASSIGN_OR_RETURN(Frame * frame, FetchPage(page_id));
  return PageGuard(this, page_id, frame);
}

Result<PageGuard> BufferPool::NewPageGuarded(page_id_t* page_id) {
  ELE_ASSIGN_OR_RETURN(Frame * frame, NewPage(page_id));
  return PageGuard(this, *page_id, frame);
}

Result<Frame*> BufferPool::FetchPage(page_id_t page_id) {
  MutexLock lock(latch_);
  auto it = page_table_.find(page_id);
  if (it != page_table_.end()) {
    stats_.hits++;
    if (heatmap_ != nullptr) heatmap_->RecordHit(obs::CurrentAccessLabel());
    if (IoSink* sink = CurrentIoSink()) {
      sink->pool_hits.fetch_add(1, std::memory_order_relaxed);
    }
    Frame& f = frames_[it->second];
    f.pin_count_++;
    Touch(it->second);
    return &f;
  }
  stats_.misses++;
  if (heatmap_ != nullptr) heatmap_->RecordFault(obs::CurrentAccessLabel());
  if (IoSink* sink = CurrentIoSink()) {
    sink->pool_misses.fetch_add(1, std::memory_order_relaxed);
  }
  // Span covers victim selection + the servicing disk read; gated so the
  // args vector is only built when tracing is on.
  std::optional<obs::TraceSpan> fault_span;
  if (obs::TraceLog::Global().enabled()) {
    fault_span.emplace("page_fault", "pool",
                       obs::TraceArgs{{"page", std::to_string(page_id)},
                                      {"object", obs::CurrentAccessLabel()}});
  }
  ELE_ASSIGN_OR_RETURN(size_t idx, GetVictimFrame());
  Frame& f = frames_[idx];
  // The disk read happens under the latch: simple and correct, and the miss
  // path is rare enough (once per resident page) that it does not bottleneck
  // parallel scans.
  ELE_RETURN_NOT_OK(disk_->ReadPage(page_id, f.data()));
  f.page_id_ = page_id;
  f.pin_count_ = 1;
  f.dirty_ = false;
  page_table_[page_id] = idx;
  Touch(idx);
  return &f;
}

Result<Frame*> BufferPool::NewPage(page_id_t* page_id) {
  MutexLock lock(latch_);
  *page_id = disk_->AllocatePage();
  ELE_ASSIGN_OR_RETURN(size_t idx, GetVictimFrame());
  Frame& f = frames_[idx];
  std::memset(f.data(), 0, kPageSize);
  f.page_id_ = *page_id;
  f.pin_count_ = 1;
  f.dirty_ = true;
  page_table_[*page_id] = idx;
  Touch(idx);
  return &f;
}

void BufferPool::UnpinPage(page_id_t page_id, bool dirty) {
  MutexLock lock(latch_);
  auto it = page_table_.find(page_id);
  if (it == page_table_.end()) {
    // A pinned page can never be evicted, so unpinning a non-resident page
    // means the pin was already released (or never taken): a protocol bug.
    stats_.pin_protocol_errors++;
    return;
  }
  Frame& f = frames_[it->second];
  if (f.pin_count_ > 0) {
    f.pin_count_--;
  } else {
    stats_.pin_protocol_errors++;  // double unpin
  }
  if (dirty) f.dirty_ = true;
}

size_t BufferPool::PinnedFrames() const {
  MutexLock lock(latch_);
  size_t n = 0;
  for (const Frame& f : frames_) {
    if (f.pin_count_ > 0) n++;
  }
  return n;
}

Status BufferPool::CheckNoPinsHeld() const {
  MutexLock lock(latch_);
  std::string leaked;
  for (const Frame& f : frames_) {
    if (f.pin_count_ > 0) {
      if (!leaked.empty()) leaked += ", ";
      leaked += "page " + std::to_string(f.page_id_) + " (pins=" +
                std::to_string(f.pin_count_) + ")";
    }
  }
  if (leaked.empty()) return Status::OK();
  return Status::Internal("pin leak: " + leaked);
}

void BufferPool::AssertNoPinsHeld() const {
  Status s = CheckNoPinsHeld();
  if (!s.ok()) {
    std::fprintf(stderr, "BufferPool::AssertNoPinsHeld failed: %s\n",
                 s.ToString().c_str());
    std::abort();
  }
}

Status BufferPool::FlushAll() {
  MutexLock lock(latch_);
  for (size_t i = 0; i < frames_.size(); i++) {
    ELE_RETURN_NOT_OK(FlushFrame(i));
  }
  return Status::OK();
}

Status BufferPool::EvictAll() {
  MutexLock lock(latch_);
  for (size_t i = 0; i < frames_.size(); i++) {
    ELE_RETURN_NOT_OK(FlushFrame(i));
  }
  for (size_t i = 0; i < frames_.size(); i++) {
    Frame& f = frames_[i];
    if (f.page_id_ == kInvalidPageId) continue;
    if (f.pin_count_ != 0) {
      return Status::Internal("EvictAll with pinned page " +
                              std::to_string(f.page_id_));
    }
    page_table_.erase(f.page_id_);
    auto it = lru_pos_.find(i);
    if (it != lru_pos_.end()) {
      lru_.erase(it->second);
      lru_pos_.erase(it);
    }
    f.page_id_ = kInvalidPageId;
    free_frames_.push_back(i);
  }
  return Status::OK();
}

}  // namespace elephant
