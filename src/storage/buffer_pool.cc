#include "storage/buffer_pool.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>

#include "obs/heatmap.h"
#include "obs/trace_log.h"

namespace elephant {

BufferPool::BufferPool(DiskManager* disk, uint32_t capacity_pages,
                       obs::AccessHeatmap* heatmap)
    : disk_(disk), capacity_(capacity_pages), heatmap_(heatmap) {
  MutexLock lock(latch_);
  frames_.resize(capacity_);
  free_frames_.reserve(capacity_);
  for (uint32_t i = 0; i < capacity_; i++) {
    frames_[i].data_ = std::make_unique<char[]>(kPageSize);
    free_frames_.push_back(capacity_ - 1 - i);  // hand out low indices first
  }
}

void BufferPool::RemoveFromReplacer(size_t frame_idx) {
  auto it = list_pos_.find(frame_idx);
  if (it == list_pos_.end()) return;
  if (frames_[frame_idx].in_scan_ring_) {
    scan_ring_.erase(it->second);
  } else {
    lru_.erase(it->second);
  }
  list_pos_.erase(it);
}

void BufferPool::Touch(size_t frame_idx) {
  RemoveFromReplacer(frame_idx);
  frames_[frame_idx].in_scan_ring_ = false;
  lru_.push_front(frame_idx);
  list_pos_[frame_idx] = lru_.begin();
}

void BufferPool::TouchRing(size_t frame_idx) {
  RemoveFromReplacer(frame_idx);
  frames_[frame_idx].in_scan_ring_ = true;
  scan_ring_.push_front(frame_idx);
  list_pos_[frame_idx] = scan_ring_.begin();
}

Status BufferPool::FlushFrame(size_t i) {
  Frame& f = frames_[i];
  if (f.dirty_ && f.page_id_ != kInvalidPageId) {
    // WAL rule: the log record that last touched this page must be durable
    // before the page image may reach disk. FlushUntil is a no-op when the
    // log is already flushed that far.
    if (f.last_lsn_ != kInvalidLsn && wal_flush_) {
      ELE_RETURN_NOT_OK(wal_flush_(f.last_lsn_));
    }
    ELE_RETURN_NOT_OK(disk_->WritePage(f.page_id_, f.data()));
    f.dirty_ = false;
    f.last_lsn_ = kInvalidLsn;
  }
  return Status::OK();
}

void BufferPool::RecordPageLsn(page_id_t page_id, lsn_t lsn) {
  MutexLock lock(latch_);
  auto it = page_table_.find(page_id);
  if (it == page_table_.end()) return;  // caller bug; tolerated like a bad unpin
  Frame& f = frames_[it->second];
  if (lsn > f.last_lsn_) f.last_lsn_ = lsn;
}

Result<size_t> BufferPool::GetVictimFrame() {
  if (!free_frames_.empty()) {
    size_t idx = free_frames_.back();
    free_frames_.pop_back();
    return idx;
  }
  // The scan ring recycles before the young region ever loses a page: evict
  // its least-recent unpinned frame first, then fall back to the young-LRU
  // tail. With no sequential traffic the ring is empty and this is exactly
  // the old pure-LRU victim scan.
  for (std::list<size_t>* region : {&scan_ring_, &lru_}) {
    for (auto it = region->rbegin(); it != region->rend(); ++it) {
      size_t idx = *it;
      if (frames_[idx].pin_count_ == 0) {
        ELE_RETURN_NOT_OK(FlushFrame(idx));
        page_table_.erase(frames_[idx].page_id_);
        region->erase(std::next(it).base());
        list_pos_.erase(idx);
        frames_[idx].page_id_ = kInvalidPageId;
        frames_[idx].in_scan_ring_ = false;
        stats_.evictions++;
        return idx;
      }
    }
  }
  return Status::ResourceExhausted("buffer pool: all frames pinned");
}

Result<PageGuard> BufferPool::FetchPageGuarded(page_id_t page_id,
                                               AccessIntent intent) {
  ELE_ASSIGN_OR_RETURN(Frame * frame, FetchPage(page_id, intent));
  return PageGuard(this, page_id, frame);
}

Result<PageGuard> BufferPool::NewPageGuarded(page_id_t* page_id,
                                             AccessIntent intent) {
  ELE_ASSIGN_OR_RETURN(Frame * frame, NewPage(page_id, intent));
  return PageGuard(this, *page_id, frame);
}

Result<Frame*> BufferPool::FetchPage(page_id_t page_id, AccessIntent intent) {
  MutexLock lock(latch_);
  auto it = page_table_.find(page_id);
  if (it != page_table_.end()) {
    stats_.hits++;
    if (heatmap_ != nullptr) heatmap_->RecordHit(obs::CurrentAccessLabel());
    if (IoSink* sink = CurrentIoSink()) {
      sink->pool_hits.fetch_add(1, std::memory_order_relaxed);
    }
    Frame& f = frames_[it->second];
    f.pin_count_++;
    if (f.in_scan_ring_) {
      if (intent == AccessIntent::kPointLookup) {
        // Reuse beyond the scan that brought it in: graduate to the young
        // region so the page competes as a normal hot page.
        stats_.scan_ring_promotions++;
        Touch(it->second);
      } else {
        TouchRing(it->second);
      }
    } else {
      // Young pages stay young: a scan crossing an already-hot page must not
      // demote it (that would let the scan damage the working set after all).
      Touch(it->second);
    }
    return &f;
  }
  stats_.misses++;
  if (heatmap_ != nullptr) heatmap_->RecordFault(obs::CurrentAccessLabel());
  if (IoSink* sink = CurrentIoSink()) {
    sink->pool_misses.fetch_add(1, std::memory_order_relaxed);
  }
  // Span covers victim selection + the servicing disk read; gated so the
  // args vector is only built when tracing is on.
  std::optional<obs::TraceSpan> fault_span;
  if (obs::TraceLog::Global().enabled()) {
    fault_span.emplace("page_fault", "pool",
                       obs::TraceArgs{{"page", std::to_string(page_id)},
                                      {"object", obs::CurrentAccessLabel()}});
  }
  ELE_ASSIGN_OR_RETURN(size_t idx, GetVictimFrame());
  Frame& f = frames_[idx];
  // The disk read happens under the latch: simple and correct, and the miss
  // path is rare enough (once per resident page) that it does not bottleneck
  // parallel scans.
  ELE_RETURN_NOT_OK(disk_->ReadPage(page_id, f.data(), intent));
  f.page_id_ = page_id;
  f.pin_count_ = 1;
  f.dirty_ = false;
  f.last_lsn_ = kInvalidLsn;
  page_table_[page_id] = idx;
  if (intent == AccessIntent::kSequentialScan) {
    stats_.scan_ring_inserts++;
    TouchRing(idx);
  } else {
    Touch(idx);
  }
  return &f;
}

Result<Frame*> BufferPool::NewPage(page_id_t* page_id, AccessIntent intent) {
  MutexLock lock(latch_);
  *page_id = disk_->AllocatePage();
  ELE_ASSIGN_OR_RETURN(size_t idx, GetVictimFrame());
  Frame& f = frames_[idx];
  std::memset(f.data(), 0, kPageSize);
  f.page_id_ = *page_id;
  f.pin_count_ = 1;
  f.dirty_ = true;
  f.last_lsn_ = kInvalidLsn;
  page_table_[*page_id] = idx;
  if (intent == AccessIntent::kSequentialScan) {
    stats_.scan_ring_inserts++;
    TouchRing(idx);
  } else {
    Touch(idx);
  }
  return &f;
}

void BufferPool::UnpinPage(page_id_t page_id, bool dirty) {
  MutexLock lock(latch_);
  auto it = page_table_.find(page_id);
  if (it == page_table_.end()) {
    // A pinned page can never be evicted, so unpinning a non-resident page
    // means the pin was already released (or never taken): a protocol bug.
    stats_.pin_protocol_errors++;
    return;
  }
  Frame& f = frames_[it->second];
  if (f.pin_count_ > 0) {
    f.pin_count_--;
  } else {
    stats_.pin_protocol_errors++;  // double unpin
  }
  if (dirty) f.dirty_ = true;
}

size_t BufferPool::PinnedFrames() const {
  MutexLock lock(latch_);
  size_t n = 0;
  for (const Frame& f : frames_) {
    if (f.pin_count_ > 0) n++;
  }
  return n;
}

Status BufferPool::CheckNoPinsHeld() const {
  MutexLock lock(latch_);
  std::string leaked;
  for (const Frame& f : frames_) {
    if (f.pin_count_ > 0) {
      if (!leaked.empty()) leaked += ", ";
      leaked += "page " + std::to_string(f.page_id_) + " (pins=" +
                std::to_string(f.pin_count_) + ")";
    }
  }
  if (leaked.empty()) return Status::OK();
  return Status::Internal("pin leak: " + leaked);
}

void BufferPool::AssertNoPinsHeld() const {
  Status s = CheckNoPinsHeld();
  if (!s.ok()) {
    std::fprintf(stderr, "BufferPool::AssertNoPinsHeld failed: %s\n",
                 s.ToString().c_str());
    std::abort();
  }
}

Status BufferPool::FlushAll() {
  MutexLock lock(latch_);
  for (size_t i = 0; i < frames_.size(); i++) {
    ELE_RETURN_NOT_OK(FlushFrame(i));
  }
  return Status::OK();
}

Status BufferPool::EvictAll() {
  MutexLock lock(latch_);
  for (size_t i = 0; i < frames_.size(); i++) {
    ELE_RETURN_NOT_OK(FlushFrame(i));
  }
  // Drop every unpinned frame even when some are pinned: the pool stays
  // consistent either way, and the caller learns exactly which pages kept
  // their residency.
  std::string pinned;
  for (size_t i = 0; i < frames_.size(); i++) {
    Frame& f = frames_[i];
    if (f.page_id_ == kInvalidPageId) continue;
    if (f.pin_count_ != 0) {
      if (!pinned.empty()) pinned += ", ";
      pinned += "page " + std::to_string(f.page_id_) + " (pins=" +
                std::to_string(f.pin_count_) + ")";
      continue;
    }
    page_table_.erase(f.page_id_);
    RemoveFromReplacer(i);
    f.page_id_ = kInvalidPageId;
    f.in_scan_ring_ = false;
    free_frames_.push_back(i);
  }
  if (!pinned.empty()) {
    return Status::FailedPrecondition("EvictAll left pinned pages resident: " +
                                      pinned);
  }
  return Status::OK();
}

}  // namespace elephant
