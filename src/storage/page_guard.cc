#include "storage/page_guard.h"

#include "storage/buffer_pool.h"

namespace elephant {

char* PageGuard::data() { return frame_->data(); }

const char* PageGuard::data() const { return frame_->data(); }

void PageGuard::Release() {
  if (pool_ != nullptr && frame_ != nullptr) {
    pool_->UnpinPage(page_id_, dirty_);
  }
  pool_ = nullptr;
  frame_ = nullptr;
  dirty_ = false;
}

}  // namespace elephant
