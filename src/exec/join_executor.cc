#include "exec/join_executor.h"

namespace elephant {

InljBounds InljBounds::Clone() const {
  InljBounds out;
  for (const ExprPtr& e : eq_exprs) out.eq_exprs.push_back(e->Clone());
  out.lo = lo ? lo->Clone() : nullptr;
  out.lo_inclusive = lo_inclusive;
  out.hi = hi ? hi->Clone() : nullptr;
  out.hi_inclusive = hi_inclusive;
  return out;
}

IndexNestedLoopJoinExecutor::IndexNestedLoopJoinExecutor(
    ExecContext* ctx, ExecutorPtr outer, const Table* inner_table,
    const SecondaryIndex* inner_index, InljBounds bounds, ExprPtr residual)
    : ctx_(ctx),
      outer_(std::move(outer)),
      inner_table_(inner_table),
      inner_index_(inner_index),
      bounds_(std::move(bounds)),
      residual_(std::move(residual)) {
  const Schema& inner_schema =
      inner_index_ != nullptr ? inner_index_->out_schema : inner_table_->schema();
  schema_ = Schema::Concat(outer_->OutputSchema(), inner_schema);
}

Status IndexNestedLoopJoinExecutor::Init() {
  ELE_RETURN_NOT_OK(outer_->Init());
  outer_valid_ = false;
  inner_scan_.reset();
  return Status::OK();
}

Status IndexNestedLoopJoinExecutor::OpenInner() {
  std::vector<Value> eq_values;
  eq_values.reserve(bounds_.eq_exprs.size());
  for (const ExprPtr& e : bounds_.eq_exprs) {
    ELE_ASSIGN_OR_RETURN(Value v, e->Eval(outer_row_));
    eq_values.push_back(std::move(v));
  }
  std::optional<Value> lo, hi;
  if (bounds_.lo != nullptr) {
    ELE_ASSIGN_OR_RETURN(Value v, bounds_.lo->Eval(outer_row_));
    lo = std::move(v);
  }
  if (bounds_.hi != nullptr) {
    ELE_ASSIGN_OR_RETURN(Value v, bounds_.hi->Eval(outer_row_));
    hi = std::move(v);
  }
  KeyRange range = MakeKeyRange(eq_values, lo, bounds_.lo_inclusive, hi,
                                bounds_.hi_inclusive);
  if (inner_index_ != nullptr) {
    inner_scan_ = std::make_unique<SecondaryIndexScanExecutor>(
        ctx_, inner_table_, inner_index_, std::move(range));
  } else {
    inner_scan_ = std::make_unique<ClusteredScanExecutor>(ctx_, inner_table_,
                                                          std::move(range));
  }
  ctx_->counters().index_seeks++;
  return inner_scan_->Init();
}

Result<bool> IndexNestedLoopJoinExecutor::Next(Row* out) {
  while (true) {
    if (!outer_valid_) {
      ELE_ASSIGN_OR_RETURN(bool has, outer_->Next(&outer_row_));
      if (!has) return false;
      outer_valid_ = true;
      ELE_RETURN_NOT_OK(OpenInner());
    }
    Row inner_row;
    ELE_ASSIGN_OR_RETURN(bool has_inner, inner_scan_->Next(&inner_row));
    if (!has_inner) {
      outer_valid_ = false;
      continue;
    }
    out->clear();
    out->reserve(outer_row_.size() + inner_row.size());
    out->insert(out->end(), outer_row_.begin(), outer_row_.end());
    out->insert(out->end(), inner_row.begin(), inner_row.end());
    if (residual_ != nullptr) {
      ELE_ASSIGN_OR_RETURN(bool pass, EvalPredicate(*residual_, *out));
      if (!pass) continue;
    }
    return true;
  }
}

HashJoinExecutor::HashJoinExecutor(ExecContext* ctx, ExecutorPtr left,
                                   ExecutorPtr right, std::vector<ExprPtr> left_keys,
                                   std::vector<ExprPtr> right_keys, ExprPtr residual)
    : ctx_(ctx),
      left_(std::move(left)),
      right_(std::move(right)),
      left_keys_(std::move(left_keys)),
      right_keys_(std::move(right_keys)),
      residual_(std::move(residual)) {
  schema_ = Schema::Concat(left_->OutputSchema(), right_->OutputSchema());
}

Result<std::string> HashJoinExecutor::EncodeKeys(const std::vector<ExprPtr>& exprs,
                                                 const Row& row) {
  std::string key;
  for (const ExprPtr& e : exprs) {
    ELE_ASSIGN_OR_RETURN(Value v, e->Eval(row));
    if (v.is_null()) return std::string();  // NULL keys never join
    keycodec::Encode(v, &key);
  }
  return key;
}

Status HashJoinExecutor::Init() {
  ELE_RETURN_NOT_OK(left_->Init());
  ELE_RETURN_NOT_OK(right_->Init());
  build_.clear();
  probe_valid_ = false;
  Row row;
  while (true) {
    ELE_ASSIGN_OR_RETURN(bool has, right_->Next(&row));
    if (!has) break;
    ELE_ASSIGN_OR_RETURN(std::string key, EncodeKeys(right_keys_, row));
    if (key.empty() && !right_keys_.empty()) continue;  // NULL key
    build_.emplace(std::move(key), row);
  }
  return Status::OK();
}

Result<bool> HashJoinExecutor::Next(Row* out) {
  while (true) {
    if (!probe_valid_) {
      ELE_ASSIGN_OR_RETURN(bool has, left_->Next(&probe_row_));
      if (!has) return false;
      ELE_ASSIGN_OR_RETURN(std::string key, EncodeKeys(left_keys_, probe_row_));
      if (key.empty() && !left_keys_.empty()) continue;  // NULL key
      matches_ = build_.equal_range(key);
      probe_valid_ = true;
    }
    if (matches_.first == matches_.second) {
      probe_valid_ = false;
      continue;
    }
    const Row& build_row = matches_.first->second;
    ++matches_.first;
    out->clear();
    out->reserve(probe_row_.size() + build_row.size());
    out->insert(out->end(), probe_row_.begin(), probe_row_.end());
    out->insert(out->end(), build_row.begin(), build_row.end());
    if (residual_ != nullptr) {
      ELE_ASSIGN_OR_RETURN(bool pass, EvalPredicate(*residual_, *out));
      if (!pass) continue;
    }
    return true;
  }
}

BandMergeJoinExecutor::BandMergeJoinExecutor(ExecContext* ctx, ExecutorPtr outer,
                                             ExecutorPtr inner, ExprPtr outer_lo,
                                             ExprPtr outer_hi, ExprPtr inner_point,
                                             ExprPtr residual)
    : ctx_(ctx),
      outer_(std::move(outer)),
      inner_(std::move(inner)),
      outer_lo_(std::move(outer_lo)),
      outer_hi_(std::move(outer_hi)),
      inner_point_(std::move(inner_point)),
      residual_(std::move(residual)) {
  schema_ = Schema::Concat(outer_->OutputSchema(), inner_->OutputSchema());
}

Status BandMergeJoinExecutor::AdvanceOuter() {
  ELE_ASSIGN_OR_RETURN(bool has, outer_->Next(&outer_row_));
  outer_valid_ = has;
  if (has) {
    ELE_ASSIGN_OR_RETURN(lo_, outer_lo_->Eval(outer_row_));
    ELE_ASSIGN_OR_RETURN(hi_, outer_hi_->Eval(outer_row_));
  }
  return Status::OK();
}

Status BandMergeJoinExecutor::AdvanceInner() {
  ELE_ASSIGN_OR_RETURN(bool has, inner_->Next(&inner_row_));
  inner_valid_ = has;
  if (has) {
    ELE_ASSIGN_OR_RETURN(point_, inner_point_->Eval(inner_row_));
  }
  return Status::OK();
}

Status BandMergeJoinExecutor::Init() {
  ELE_RETURN_NOT_OK(outer_->Init());
  ELE_RETURN_NOT_OK(inner_->Init());
  ELE_RETURN_NOT_OK(AdvanceOuter());
  ELE_RETURN_NOT_OK(AdvanceInner());
  return Status::OK();
}

Result<bool> BandMergeJoinExecutor::Next(Row* out) {
  while (outer_valid_ && inner_valid_) {
    if (point_.Compare(lo_) < 0) {
      ELE_RETURN_NOT_OK(AdvanceInner());
      continue;
    }
    if (point_.Compare(hi_) > 0) {
      ELE_RETURN_NOT_OK(AdvanceOuter());
      continue;
    }
    // Containment: emit, then advance the inner side (each inner point
    // belongs to at most one outer range — ranges never partially overlap).
    out->clear();
    out->reserve(outer_row_.size() + inner_row_.size());
    out->insert(out->end(), outer_row_.begin(), outer_row_.end());
    out->insert(out->end(), inner_row_.begin(), inner_row_.end());
    ELE_RETURN_NOT_OK(AdvanceInner());
    if (residual_ != nullptr) {
      ELE_ASSIGN_OR_RETURN(bool pass, EvalPredicate(*residual_, *out));
      if (!pass) continue;
    }
    return true;
  }
  return false;
}

}  // namespace elephant
