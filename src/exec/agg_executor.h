#pragma once

#include <map>

#include "exec/executor.h"
#include "exec/expression.h"

namespace elephant {

/// Hash-based GROUP BY aggregation: consumes the whole child in Init(),
/// then drains groups. Output schema = group columns ++ aggregate columns.
/// Groups are emitted in encoded-group-key order (deterministic output).
/// batch: twin BatchHashAggregateExecutor (batch_executors.h).
class HashAggregateExecutor final : public Executor {
 public:
  HashAggregateExecutor(ExecContext* ctx, ExecutorPtr child,
                        std::vector<ExprPtr> group_exprs, std::vector<AggSpec> aggs);

  Status Init() override;
  Result<bool> Next(Row* out) override;
  const Schema& OutputSchema() const override { return schema_; }

 private:
  ExecContext* ctx_;
  ExecutorPtr child_;
  std::vector<ExprPtr> group_exprs_;
  std::vector<AggSpec> aggs_;
  Schema schema_;

  struct Group {
    Row group_values;
    std::vector<AggState> states;
  };
  // std::map keyed by encoded group values: deterministic emission order.
  std::map<std::string, Group> groups_;
  std::map<std::string, Group>::iterator emit_it_;
  bool inited_ = false;
};

/// Stream aggregation over input already sorted (or at least clustered) by
/// the group expressions: emits each group as soon as the next group starts.
/// This is the "stream-based operator" of the paper's Figure 4(c) plan —
/// after an intermediate sort, grouping needs no hash table.
/// batch: twin BatchStreamAggregateExecutor (batch_executors.h).
class StreamAggregateExecutor final : public Executor {
 public:
  StreamAggregateExecutor(ExecContext* ctx, ExecutorPtr child,
                          std::vector<ExprPtr> group_exprs,
                          std::vector<AggSpec> aggs);

  Status Init() override;
  Result<bool> Next(Row* out) override;
  const Schema& OutputSchema() const override { return schema_; }

 private:
  /// Folds `row` into the current group's states.
  Status Accumulate(const Row& row);
  /// Emits the current group into `out` and resets state.
  void EmitCurrent(Row* out);

  ExecContext* ctx_;
  ExecutorPtr child_;
  std::vector<ExprPtr> group_exprs_;
  std::vector<AggSpec> aggs_;
  Schema schema_;

  bool has_group_ = false;
  bool child_done_ = false;
  std::string current_key_;
  Row current_values_;
  std::vector<AggState> states_;
};

/// Builds the output schema shared by both aggregate executors.
Schema MakeAggOutputSchema(const Schema& input, const std::vector<ExprPtr>& groups,
                           const std::vector<AggSpec>& aggs);

/// Fresh accumulator states for `aggs`, shared by the row and batch
/// aggregate executors so both fold inputs through identical AggState logic.
std::vector<AggState> FreshAggStates(const std::vector<AggSpec>& aggs);

/// Output schema of a PartialAggregateExecutor: group columns followed by
/// each aggregate's partial (transfer) columns — see AggState::AppendPartial.
Schema MakePartialAggSchema(const std::vector<ExprPtr>& groups,
                            const std::vector<AggSpec>& aggs);

/// Worker-side half of a parallel aggregation: groups its input like
/// HashAggregateExecutor but emits partial states instead of finalized
/// values (COUNT -> count, SUM -> running sum, AVG -> (sum, count), ...).
/// One instance runs per morsel; a FinalAggregateExecutor above the
/// exchange merges the partial rows exactly.
///
/// A scalar (no GROUP BY) partial aggregate over an empty morsel still
/// emits one all-empty partial row, mirroring serial scalar aggregation.
/// batch: twin BatchPartialAggregateExecutor (batch_executors.h).
class PartialAggregateExecutor final : public Executor {
 public:
  PartialAggregateExecutor(ExecContext* ctx, ExecutorPtr child,
                           std::vector<ExprPtr> group_exprs,
                           std::vector<AggSpec> aggs);

  Status Init() override;
  Result<bool> Next(Row* out) override;
  const Schema& OutputSchema() const override { return schema_; }

 private:
  ExecContext* ctx_;
  ExecutorPtr child_;
  std::vector<ExprPtr> group_exprs_;
  std::vector<AggSpec> aggs_;
  Schema schema_;

  struct Group {
    Row group_values;
    std::vector<AggState> states;
  };
  std::map<std::string, Group> groups_;
  std::map<std::string, Group>::iterator emit_it_;
  bool inited_ = false;
};

/// Session-side half of a parallel aggregation: consumes partial rows
/// (group values ++ partial states) and merges them into final groups,
/// emitting in encoded-group-key order exactly like HashAggregateExecutor.
/// Merging is exact for integer and decimal aggregates; the input arrives
/// in deterministic morsel order, so even floating-point sums are
/// reproducible run to run.
/// batch: twin BatchFinalAggregateExecutor (batch_executors.h).
class FinalAggregateExecutor final : public Executor {
 public:
  /// `aggs` describe the aggregates whose partial states the child carries;
  /// `output_schema` is the serial aggregate's output schema.
  FinalAggregateExecutor(ExecContext* ctx, ExecutorPtr child, size_t num_groups,
                         std::vector<AggSpec> aggs, Schema output_schema);

  Status Init() override;
  Result<bool> Next(Row* out) override;
  const Schema& OutputSchema() const override { return schema_; }

 private:
  ExecContext* ctx_;
  ExecutorPtr child_;
  size_t num_groups_;
  std::vector<AggSpec> aggs_;
  Schema schema_;

  struct Group {
    Row group_values;
    std::vector<AggState> states;
  };
  std::map<std::string, Group> groups_;
  std::map<std::string, Group>::iterator emit_it_;
  bool inited_ = false;
};

}  // namespace elephant
