#pragma once

#include <deque>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "catalog/table.h"
#include "exec/agg_executor.h"
#include "exec/batch.h"
#include "exec/executor.h"
#include "exec/expression.h"
#include "exec/scan_executor.h"

namespace elephant {

/// Batch twin of ClusteredScanExecutor: materializes up to kBatchCapacity
/// table rows per NextBatch call. Same iterator, same key range, same
/// rows_scanned accounting per row pulled from storage.
/// batch: this IS the vectorized scan (row twin: ClusteredScanExecutor).
class BatchClusteredScanExecutor final : public BatchExecutor {
 public:
  BatchClusteredScanExecutor(ExecContext* ctx, const Table* table,
                             KeyRange range = {},
                             AccessIntent intent = AccessIntent::kPointLookup)
      : ctx_(ctx), table_(table), range_(std::move(range)), intent_(intent) {}

  Status Init() override;
  Result<bool> NextBatch(Batch* out) override;
  const Schema& OutputSchema() const override { return table_->schema(); }

 private:
  ExecContext* ctx_;
  const Table* table_;
  KeyRange range_;
  AccessIntent intent_;
  std::optional<Table::RowIterator> it_;
};

/// Batch twin of SecondaryIndexScanExecutor (covering-index range scan);
/// decodes through the same DecodeSecondaryIndexRow helper as the row path.
/// batch: this IS the vectorized index scan (row twin:
/// SecondaryIndexScanExecutor).
class BatchSecondaryIndexScanExecutor final : public BatchExecutor {
 public:
  BatchSecondaryIndexScanExecutor(ExecContext* ctx, const Table* table,
                                  const SecondaryIndex* index, KeyRange range = {},
                                  AccessIntent intent = AccessIntent::kPointLookup)
      : ctx_(ctx),
        table_(table),
        index_(index),
        range_(std::move(range)),
        intent_(intent) {}

  Status Init() override;
  Result<bool> NextBatch(Batch* out) override;
  const Schema& OutputSchema() const override { return index_->out_schema; }

 private:
  ExecContext* ctx_;
  const Table* table_;
  const SecondaryIndex* index_;
  KeyRange range_;
  AccessIntent intent_;
  std::optional<BPlusTree::Iterator> it_;
};

/// Batch filter: narrows the child batch's selection vector to rows where
/// the predicate is non-NULL true (ApplyFilterToBatch), without copying
/// survivors. Fully-filtered batches are skipped internally, so a true
/// return always carries at least one live row.
class BatchFilterExecutor final : public BatchExecutor {
 public:
  BatchFilterExecutor(BatchExecutorPtr child, ExprPtr predicate)
      : child_(std::move(child)), predicate_(std::move(predicate)) {}

  Status Init() override { return child_->Init(); }
  Result<bool> NextBatch(Batch* out) override;
  const Schema& OutputSchema() const override { return child_->OutputSchema(); }

 private:
  BatchExecutorPtr child_;
  ExprPtr predicate_;
};

/// Batch projection: evaluates one expression per output column over the
/// live rows of each child batch and emits a dense (selection-free) batch.
class BatchProjectExecutor final : public BatchExecutor {
 public:
  BatchProjectExecutor(BatchExecutorPtr child, std::vector<ExprPtr> exprs,
                       std::vector<std::string> names);

  Status Init() override { return child_->Init(); }
  Result<bool> NextBatch(Batch* out) override;
  const Schema& OutputSchema() const override { return schema_; }

 private:
  BatchExecutorPtr child_;
  std::vector<ExprPtr> exprs_;
  Schema schema_;
};

/// Batch twin of HashAggregateExecutor: consumes the whole child in Init()
/// — group keys and aggregate arguments evaluated vectorized per batch,
/// folded through the same AggState accumulators in the same row order —
/// then drains groups in encoded-key order, kBatchCapacity rows at a time.
class BatchHashAggregateExecutor final : public BatchExecutor {
 public:
  BatchHashAggregateExecutor(ExecContext* ctx, BatchExecutorPtr child,
                             std::vector<ExprPtr> group_exprs,
                             std::vector<AggSpec> aggs);

  Status Init() override;
  Result<bool> NextBatch(Batch* out) override;
  const Schema& OutputSchema() const override { return schema_; }

 private:
  ExecContext* ctx_;
  BatchExecutorPtr child_;
  std::vector<ExprPtr> group_exprs_;
  std::vector<AggSpec> aggs_;
  Schema schema_;

  struct Group {
    Row group_values;
    std::vector<AggState> states;
  };
  std::map<std::string, Group> groups_;
  std::map<std::string, Group>::iterator emit_it_;
  bool inited_ = false;
};

/// Batch twin of StreamAggregateExecutor: input arrives clustered by the
/// group expressions; the current group's state is carried across batch
/// boundaries so a group split over two (or more) batches folds exactly
/// like the row path.
class BatchStreamAggregateExecutor final : public BatchExecutor {
 public:
  BatchStreamAggregateExecutor(ExecContext* ctx, BatchExecutorPtr child,
                               std::vector<ExprPtr> group_exprs,
                               std::vector<AggSpec> aggs);

  Status Init() override;
  Result<bool> NextBatch(Batch* out) override;
  const Schema& OutputSchema() const override { return schema_; }

 private:
  /// Folds one child batch into group states, appending each finished
  /// group's output row to `pending_`.
  Status ConsumeBatch(const Batch& in);
  Row FinishCurrent();

  ExecContext* ctx_;
  BatchExecutorPtr child_;
  std::vector<ExprPtr> group_exprs_;
  std::vector<AggSpec> aggs_;
  Schema schema_;

  bool has_group_ = false;
  bool child_done_ = false;
  bool final_emitted_ = false;
  std::string current_key_;
  Row current_values_;
  std::vector<AggState> states_;
  std::deque<Row> pending_;
  Batch in_;
};

/// Batch twin of PartialAggregateExecutor (worker-side half of a parallel
/// aggregation): emits partial transfer rows instead of finalized values.
/// A scalar partial aggregate over an empty morsel still emits one row.
class BatchPartialAggregateExecutor final : public BatchExecutor {
 public:
  BatchPartialAggregateExecutor(ExecContext* ctx, BatchExecutorPtr child,
                                std::vector<ExprPtr> group_exprs,
                                std::vector<AggSpec> aggs);

  Status Init() override;
  Result<bool> NextBatch(Batch* out) override;
  const Schema& OutputSchema() const override { return schema_; }

 private:
  ExecContext* ctx_;
  BatchExecutorPtr child_;
  std::vector<ExprPtr> group_exprs_;
  std::vector<AggSpec> aggs_;
  Schema schema_;

  struct Group {
    Row group_values;
    std::vector<AggState> states;
  };
  std::map<std::string, Group> groups_;
  std::map<std::string, Group>::iterator emit_it_;
  bool inited_ = false;
};

/// Batch twin of FinalAggregateExecutor (session-side half): merges partial
/// transfer rows — usually via a BatchFromRowAdapter over the Gather
/// exchange — through AggState::MergePartial, identically to the row path.
class BatchFinalAggregateExecutor final : public BatchExecutor {
 public:
  BatchFinalAggregateExecutor(ExecContext* ctx, BatchExecutorPtr child,
                              size_t num_groups, std::vector<AggSpec> aggs,
                              Schema output_schema);

  Status Init() override;
  Result<bool> NextBatch(Batch* out) override;
  const Schema& OutputSchema() const override { return schema_; }

 private:
  ExecContext* ctx_;
  BatchExecutorPtr child_;
  size_t num_groups_;
  std::vector<AggSpec> aggs_;
  Schema schema_;

  struct Group {
    Row group_values;
    std::vector<AggState> states;
  };
  std::map<std::string, Group> groups_;
  std::map<std::string, Group>::iterator emit_it_;
  bool inited_ = false;
};

/// Row-side adapter over a batch subtree: the fallback bridge that lets a
/// batch pipeline feed any Volcano consumer (joins, Sort, Limit, the engine
/// drain loop). Transparent: no plan node, no counters of its own.
/// batch: adapter between the engines, not an operator (no batch twin).
class RowFromBatchAdapter final : public Executor {
 public:
  explicit RowFromBatchAdapter(BatchExecutorPtr child)
      : child_(std::move(child)) {}

  Status Init() override {
    idx_ = 0;
    done_ = false;
    batch_.Reset(0);
    return child_->Init();
  }
  Result<bool> Next(Row* out) override;
  const Schema& OutputSchema() const override { return child_->OutputSchema(); }

 private:
  BatchExecutorPtr child_;
  Batch batch_;
  uint32_t idx_ = 0;
  bool done_ = false;
};

/// Batch-side adapter over a row subtree: lets batch consumers (e.g. a
/// final aggregate above the Gather exchange, or a stream aggregate above a
/// Sort) run over any Volcano producer. Emits dense batches.
class BatchFromRowAdapter final : public BatchExecutor {
 public:
  explicit BatchFromRowAdapter(ExecutorPtr child) : child_(std::move(child)) {}

  Status Init() override {
    done_ = false;
    return child_->Init();
  }
  Result<bool> NextBatch(Batch* out) override;
  const Schema& OutputSchema() const override { return child_->OutputSchema(); }

 private:
  ExecutorPtr child_;
  bool done_ = false;
};

}  // namespace elephant
