#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/schema.h"
#include "common/status.h"
#include "common/value.h"

namespace elephant {

class Batch;
class Expr;
using ExprPtr = std::unique_ptr<Expr>;

enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };
enum class LogicalOp { kAnd, kOr };
enum class ArithOp { kAdd, kSub, kMul, kDiv };

const char* CompareOpName(CompareOp op);
const char* ArithOpName(ArithOp op);

/// Scalar comparison kernel shared by the row and batch evaluation paths so
/// both engines agree bit-for-bit: NULL operands yield false.
Result<Value> EvalCompareOp(CompareOp op, const Value& l, const Value& r);

/// Scalar arithmetic kernel shared by the row and batch evaluation paths.
/// `/` always yields DOUBLE; division by zero is an error.
Result<Value> EvalArithOp(ArithOp op, const Value& l, const Value& r);

/// A scalar expression evaluated against a single input row. Column
/// references are positional (resolved by the binder/planner); join
/// executors evaluate expressions against the concatenated row.
class Expr {
 public:
  virtual ~Expr() = default;

  /// Evaluates against `row`. Comparison of NULL operands yields false
  /// (simplified SQL three-valued logic: NULL never satisfies a filter).
  virtual Result<Value> Eval(const Row& row) const = 0;

  /// Vectorized evaluation: computes this expression at each physical row
  /// index listed in `positions`, writing results into `(*out)[pos]`.
  /// `out` is resized to batch.num_rows(); entries at positions NOT listed
  /// are unspecified and must never be read. Taking an explicit position
  /// list (rather than evaluating the whole batch) is what keeps batch
  /// semantics identical to Volcano: side-effecting expressions such as
  /// `10 / x` are never evaluated at rows a preceding filter rejected, and
  /// AND/OR short-circuit positionally exactly like the row path.
  ///
  /// The base implementation gathers scratch rows and calls Eval; leaf and
  /// arithmetic/comparison nodes override it with columnar loops built on
  /// the same scalar kernels as the row path.
  virtual Status EvalBatch(const Batch& batch,
                           const std::vector<uint32_t>& positions,
                           std::vector<Value>* out) const;

  /// Static result type.
  virtual TypeId output_type() const = 0;

  /// Width for CHAR results (0 otherwise). Needed so schemas derived from
  /// expressions keep fixed-width string layouts intact.
  virtual uint32_t output_length() const { return 0; }

  virtual std::string ToString() const = 0;

  virtual ExprPtr Clone() const = 0;

  /// Collects all column indices referenced by this expression.
  virtual void CollectColumns(std::vector<size_t>* out) const = 0;

  /// Rewrites every column index i to i + delta (used when an expression
  /// moves across a join boundary).
  virtual void ShiftColumns(int delta) = 0;

  /// Rewrites every column index i to mapping[i]. Entries of -1 mark columns
  /// that must not be referenced (programming error if hit).
  virtual void RemapColumns(const std::vector<int>& mapping) = 0;
};

/// Positional column reference.
class ColumnExpr final : public Expr {
 public:
  ColumnExpr(size_t index, TypeId type, std::string name = "", uint32_t length = 0)
      : index_(index), type_(type), name_(std::move(name)), length_(length) {}

  Result<Value> Eval(const Row& row) const override {
    if (index_ >= row.size()) {
      return Status::ExecError("column index " + std::to_string(index_) +
                               " out of range (row arity " +
                               std::to_string(row.size()) + ")");
    }
    return row[index_];
  }
  Status EvalBatch(const Batch& batch, const std::vector<uint32_t>& positions,
                   std::vector<Value>* out) const override;
  TypeId output_type() const override { return type_; }
  uint32_t output_length() const override { return length_; }
  std::string ToString() const override {
    return name_.empty() ? "#" + std::to_string(index_) : name_;
  }
  ExprPtr Clone() const override {
    return std::make_unique<ColumnExpr>(index_, type_, name_, length_);
  }
  void CollectColumns(std::vector<size_t>* out) const override {
    out->push_back(index_);
  }
  void ShiftColumns(int delta) override {
    index_ = static_cast<size_t>(static_cast<long>(index_) + delta);
  }
  void RemapColumns(const std::vector<int>& mapping) override {
    assert(index_ < mapping.size() && mapping[index_] >= 0 &&
           "column remap to unavailable position");
    index_ = static_cast<size_t>(mapping[index_]);
  }

  size_t index() const { return index_; }

 private:
  size_t index_;
  TypeId type_;
  std::string name_;
  uint32_t length_;
};

/// Constant.
class LiteralExpr final : public Expr {
 public:
  explicit LiteralExpr(Value v) : value_(std::move(v)) {}

  Result<Value> Eval(const Row&) const override { return value_; }
  Status EvalBatch(const Batch& batch, const std::vector<uint32_t>& positions,
                   std::vector<Value>* out) const override;
  TypeId output_type() const override { return value_.type(); }
  uint32_t output_length() const override {
    return value_.type() == TypeId::kChar
               ? static_cast<uint32_t>(value_.AsString().size())
               : 0;
  }
  std::string ToString() const override { return value_.ToString(); }
  ExprPtr Clone() const override { return std::make_unique<LiteralExpr>(value_); }
  void CollectColumns(std::vector<size_t>*) const override {}
  void ShiftColumns(int) override {}
  void RemapColumns(const std::vector<int>&) override {}

  const Value& value() const { return value_; }

 private:
  Value value_;
};

/// Binary comparison; returns BOOLEAN (false when either side is NULL).
class CompareExpr final : public Expr {
 public:
  CompareExpr(CompareOp op, ExprPtr lhs, ExprPtr rhs)
      : op_(op), lhs_(std::move(lhs)), rhs_(std::move(rhs)) {}

  Result<Value> Eval(const Row& row) const override;
  Status EvalBatch(const Batch& batch, const std::vector<uint32_t>& positions,
                   std::vector<Value>* out) const override;
  TypeId output_type() const override { return TypeId::kBoolean; }
  std::string ToString() const override {
    return "(" + lhs_->ToString() + " " + CompareOpName(op_) + " " +
           rhs_->ToString() + ")";
  }
  ExprPtr Clone() const override {
    return std::make_unique<CompareExpr>(op_, lhs_->Clone(), rhs_->Clone());
  }
  void CollectColumns(std::vector<size_t>* out) const override {
    lhs_->CollectColumns(out);
    rhs_->CollectColumns(out);
  }
  void ShiftColumns(int delta) override {
    lhs_->ShiftColumns(delta);
    rhs_->ShiftColumns(delta);
  }
  void RemapColumns(const std::vector<int>& mapping) override {
    lhs_->RemapColumns(mapping);
    rhs_->RemapColumns(mapping);
  }

  CompareOp op() const { return op_; }
  const Expr* lhs() const { return lhs_.get(); }
  const Expr* rhs() const { return rhs_.get(); }
  ExprPtr TakeLhs() { return std::move(lhs_); }
  ExprPtr TakeRhs() { return std::move(rhs_); }

 private:
  CompareOp op_;
  ExprPtr lhs_, rhs_;
};

/// AND / OR over boolean operands.
class LogicalExpr final : public Expr {
 public:
  LogicalExpr(LogicalOp op, ExprPtr lhs, ExprPtr rhs)
      : op_(op), lhs_(std::move(lhs)), rhs_(std::move(rhs)) {}

  Result<Value> Eval(const Row& row) const override;
  Status EvalBatch(const Batch& batch, const std::vector<uint32_t>& positions,
                   std::vector<Value>* out) const override;
  TypeId output_type() const override { return TypeId::kBoolean; }
  std::string ToString() const override {
    return "(" + lhs_->ToString() + (op_ == LogicalOp::kAnd ? " AND " : " OR ") +
           rhs_->ToString() + ")";
  }
  ExprPtr Clone() const override {
    return std::make_unique<LogicalExpr>(op_, lhs_->Clone(), rhs_->Clone());
  }
  void CollectColumns(std::vector<size_t>* out) const override {
    lhs_->CollectColumns(out);
    rhs_->CollectColumns(out);
  }
  void ShiftColumns(int delta) override {
    lhs_->ShiftColumns(delta);
    rhs_->ShiftColumns(delta);
  }
  void RemapColumns(const std::vector<int>& mapping) override {
    lhs_->RemapColumns(mapping);
    rhs_->RemapColumns(mapping);
  }

  LogicalOp op() const { return op_; }
  const Expr* lhs() const { return lhs_.get(); }
  const Expr* rhs() const { return rhs_.get(); }
  ExprPtr TakeLhs() { return std::move(lhs_); }
  ExprPtr TakeRhs() { return std::move(rhs_); }

 private:
  LogicalOp op_;
  ExprPtr lhs_, rhs_;
};

/// +, -, *, / over numeric operands.
class ArithExpr final : public Expr {
 public:
  ArithExpr(ArithOp op, ExprPtr lhs, ExprPtr rhs)
      : op_(op), lhs_(std::move(lhs)), rhs_(std::move(rhs)) {}

  Result<Value> Eval(const Row& row) const override;
  Status EvalBatch(const Batch& batch, const std::vector<uint32_t>& positions,
                   std::vector<Value>* out) const override;
  TypeId output_type() const override;
  std::string ToString() const override {
    return "(" + lhs_->ToString() + " " + ArithOpName(op_) + " " +
           rhs_->ToString() + ")";
  }
  ExprPtr Clone() const override {
    return std::make_unique<ArithExpr>(op_, lhs_->Clone(), rhs_->Clone());
  }
  void CollectColumns(std::vector<size_t>* out) const override {
    lhs_->CollectColumns(out);
    rhs_->CollectColumns(out);
  }
  void ShiftColumns(int delta) override {
    lhs_->ShiftColumns(delta);
    rhs_->ShiftColumns(delta);
  }
  void RemapColumns(const std::vector<int>& mapping) override {
    lhs_->RemapColumns(mapping);
    rhs_->RemapColumns(mapping);
  }

 private:
  ArithOp op_;
  ExprPtr lhs_, rhs_;
};

/// NOT over a boolean operand (NULL stays NULL -> filter-false).
class NotExpr final : public Expr {
 public:
  explicit NotExpr(ExprPtr child) : child_(std::move(child)) {}

  Result<Value> Eval(const Row& row) const override;
  Status EvalBatch(const Batch& batch, const std::vector<uint32_t>& positions,
                   std::vector<Value>* out) const override;
  TypeId output_type() const override { return TypeId::kBoolean; }
  std::string ToString() const override { return "NOT " + child_->ToString(); }
  ExprPtr Clone() const override {
    return std::make_unique<NotExpr>(child_->Clone());
  }
  void CollectColumns(std::vector<size_t>* out) const override {
    child_->CollectColumns(out);
  }
  void ShiftColumns(int delta) override { child_->ShiftColumns(delta); }
  void RemapColumns(const std::vector<int>& mapping) override {
    child_->RemapColumns(mapping);
  }

 private:
  ExprPtr child_;
};

// ---- Convenience constructors ----

inline ExprPtr Col(size_t i, TypeId t, std::string name = "", uint32_t length = 0) {
  return std::make_unique<ColumnExpr>(i, t, std::move(name), length);
}
inline ExprPtr Lit(Value v) { return std::make_unique<LiteralExpr>(std::move(v)); }
inline ExprPtr Cmp(CompareOp op, ExprPtr l, ExprPtr r) {
  return std::make_unique<CompareExpr>(op, std::move(l), std::move(r));
}
inline ExprPtr And(ExprPtr l, ExprPtr r) {
  return std::make_unique<LogicalExpr>(LogicalOp::kAnd, std::move(l), std::move(r));
}
inline ExprPtr Or(ExprPtr l, ExprPtr r) {
  return std::make_unique<LogicalExpr>(LogicalOp::kOr, std::move(l), std::move(r));
}
inline ExprPtr Arith(ArithOp op, ExprPtr l, ExprPtr r) {
  return std::make_unique<ArithExpr>(op, std::move(l), std::move(r));
}

/// ANDs a list of predicates (nullptr when empty).
ExprPtr ConjoinAll(std::vector<ExprPtr> preds);

/// Splits a predicate tree into its top-level AND conjuncts.
void SplitConjuncts(ExprPtr pred, std::vector<ExprPtr>* out);

/// Evaluates `pred` as a filter: true iff it evaluates to non-NULL true.
Result<bool> EvalPredicate(const Expr& pred, const Row& row);

/// Vectorized filter: evaluates `pred` at the live rows of `*batch` and
/// narrows the selection vector to those where it is non-NULL true —
/// row-for-row the same acceptance test as EvalPredicate.
Status ApplyFilterToBatch(const Expr& pred, Batch* batch);

// ---- Aggregates ----

enum class AggFunc { kCountStar, kCount, kSum, kMin, kMax, kAvg };

const char* AggFuncName(AggFunc fn);

/// One aggregate in a SELECT list: the function and its argument
/// (nullptr for COUNT(*)).
struct AggSpec {
  AggFunc fn;
  ExprPtr arg;
  std::string name;

  AggSpec(AggFunc f, ExprPtr a, std::string n = "")
      : fn(f), arg(std::move(a)), name(std::move(n)) {}
  AggSpec Clone() const {
    return AggSpec(fn, arg ? arg->Clone() : nullptr, name);
  }

  /// Result type of the aggregate given its argument type.
  TypeId OutputType() const;

  /// CHAR width of the result (nonzero only for MIN/MAX of CHAR columns).
  uint32_t OutputLength() const {
    return (fn == AggFunc::kMin || fn == AggFunc::kMax) && arg != nullptr
               ? arg->output_length()
               : 0;
  }
};

/// Incremental aggregate accumulator.
///
/// For parallel execution the state also has a *partial* (transfer)
/// representation — the columns a worker emits so a final aggregate can
/// merge per-morsel states exactly: COUNT carries its count, SUM/MIN/MAX
/// carry the running value, and AVG carries its (sum, count) pair so the
/// final division happens once, identically to serial execution.
class AggState {
 public:
  explicit AggState(AggFunc fn) : fn_(fn) {}

  /// Folds one input value (ignored for COUNT(*); NULLs skipped per SQL).
  Status Accumulate(const Value& v);
  /// Number of accumulated inputs so far (for COUNT/AVG).
  Value Finalize() const;

  /// Number of columns the partial representation of `fn` occupies.
  static size_t PartialWidth(AggFunc fn) { return fn == AggFunc::kAvg ? 2 : 1; }

  /// Appends the partial-representation column(s) for `spec` to `cols`.
  static void AppendPartialColumns(const AggSpec& spec, std::vector<Column>* cols);

  /// Appends this state's partial representation to `out`.
  void AppendPartial(Row* out) const;

  /// Folds a partial representation starting at `row[pos]` into this state.
  Status MergePartial(const Row& row, size_t pos);

 private:
  AggFunc fn_;
  int64_t count_ = 0;
  Value acc_;  ///< running SUM / MIN / MAX
  bool has_value_ = false;
};

}  // namespace elephant
