#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/schema.h"
#include "common/status.h"

namespace elephant {

/// Rows per batch in the vectorized engine. Large enough to amortize
/// per-call overhead (virtual dispatch, instrumentation snapshots), small
/// enough that a batch of hot columns stays cache-resident.
inline constexpr uint32_t kBatchCapacity = 1024;

/// A batch of up to kBatchCapacity rows in columnar layout, plus an optional
/// selection vector.
///
/// Layout: `cols_[c][r]` is column c of physical row r; every column vector
/// has exactly `num_rows()` entries. When the selection vector is active,
/// only the physical row indices it lists (strictly ascending) are live —
/// the other rows still hold values but are logically deleted. Producers
/// that filter (BatchFilterExecutor) set a selection vector instead of
/// compacting; consumers iterate live rows via ActiveCount()/ActiveIndex().
///
/// Values at non-selected positions must never influence results: vectorized
/// expression evaluation takes an explicit position list for exactly this
/// reason (see Expr::EvalBatch), so e.g. `10 / x` is never evaluated at a
/// row where a preceding filter already rejected `x = 0`.
class Batch {
 public:
  Batch() = default;

  /// Drops all rows and re-shapes to `num_cols` empty columns.
  void Reset(size_t num_cols) {
    cols_.resize(num_cols);
    for (auto& c : cols_) c.clear();
    num_rows_ = 0;
    sel_.clear();
    sel_active_ = false;
  }

  size_t num_cols() const { return cols_.size(); }
  uint32_t num_rows() const { return num_rows_; }
  bool empty() const { return ActiveCount() == 0; }

  const std::vector<Value>& col(size_t c) const { return cols_[c]; }
  std::vector<Value>& col(size_t c) { return cols_[c]; }

  /// Appends one row (copying); the batch must not be full.
  void AppendRow(const Row& row) {
    for (size_t c = 0; c < cols_.size(); ++c) cols_[c].push_back(row[c]);
    ++num_rows_;
  }

  /// Moves one row's values in; the batch must not be full.
  void AppendRowMove(Row&& row) {
    for (size_t c = 0; c < cols_.size(); ++c) {
      cols_[c].push_back(std::move(row[c]));
    }
    ++num_rows_;
  }

  bool full() const { return num_rows_ >= kBatchCapacity; }

  /// Declares the row count after filling columns directly (bypassing
  /// AppendRow); every column must hold exactly `n` entries.
  void SetRowCount(uint32_t n) { num_rows_ = n; }

  /// Copies physical row r into `*row` (resized to num_cols()).
  void GatherRow(uint32_t r, Row* row) const {
    row->resize(cols_.size());
    for (size_t c = 0; c < cols_.size(); ++c) (*row)[c] = cols_[c][r];
  }

  /// Installs a selection vector (physical indices, strictly ascending).
  void SetSelection(std::vector<uint32_t> sel) {
    sel_ = std::move(sel);
    sel_active_ = true;
  }
  bool selection_active() const { return sel_active_; }
  const std::vector<uint32_t>& selection() const { return sel_; }

  /// Number of live rows (selected rows, or all rows when no selection).
  uint32_t ActiveCount() const {
    return sel_active_ ? static_cast<uint32_t>(sel_.size()) : num_rows_;
  }
  /// Physical index of the i-th live row, i in [0, ActiveCount()).
  uint32_t ActiveIndex(uint32_t i) const { return sel_active_ ? sel_[i] : i; }

  /// The live physical indices as a vector (materializes the identity list
  /// when no selection is active). Used to feed Expr::EvalBatch.
  std::vector<uint32_t> ActiveIndices() const {
    if (sel_active_) return sel_;
    std::vector<uint32_t> all(num_rows_);
    for (uint32_t i = 0; i < num_rows_; ++i) all[i] = i;
    return all;
  }

 private:
  std::vector<std::vector<Value>> cols_;
  uint32_t num_rows_ = 0;
  std::vector<uint32_t> sel_;
  bool sel_active_ = false;
};

/// Batch-at-a-time executor interface, the vectorized sibling of `Executor`.
/// NextBatch fills `*out` (after resetting it to the operator's output
/// width) and returns true while rows remain; a true return with zero
/// active rows is legal (e.g. a fully-filtered batch) and consumers must
/// simply ask again. After the first false return, behavior of further
/// calls is unspecified.
class BatchExecutor {
 public:
  virtual ~BatchExecutor() = default;

  virtual Status Init() = 0;
  virtual Result<bool> NextBatch(Batch* out) = 0;
  virtual const Schema& OutputSchema() const = 0;
};

using BatchExecutorPtr = std::unique_ptr<BatchExecutor>;

}  // namespace elephant
