#pragma once

#include "exec/executor.h"
#include "exec/expression.h"

namespace elephant {

/// Emits child rows satisfying `predicate`.
/// batch: twin BatchFilterExecutor (batch_executors.h).
class FilterExecutor final : public Executor {
 public:
  FilterExecutor(ExecutorPtr child, ExprPtr predicate)
      : child_(std::move(child)), predicate_(std::move(predicate)) {}

  Status Init() override { return child_->Init(); }
  Result<bool> Next(Row* out) override;
  const Schema& OutputSchema() const override { return child_->OutputSchema(); }

 private:
  ExecutorPtr child_;
  ExprPtr predicate_;
};

/// Computes one output column per expression.
/// batch: twin BatchProjectExecutor (batch_executors.h).
class ProjectExecutor final : public Executor {
 public:
  ProjectExecutor(ExecutorPtr child, std::vector<ExprPtr> exprs,
                  std::vector<std::string> names);

  Status Init() override { return child_->Init(); }
  Result<bool> Next(Row* out) override;
  const Schema& OutputSchema() const override { return schema_; }

 private:
  ExecutorPtr child_;
  std::vector<ExprPtr> exprs_;
  Schema schema_;
};

/// One sort key: an expression and its direction.
struct SortKey {
  ExprPtr expr;
  bool ascending = true;
};

/// Materializes the child and emits rows in sort-key order (in-memory sort;
/// the engine's working sets fit the paper's read-mostly workloads).
/// batch: opt-out — blocking full-materialization operator; a batch
/// pipeline below it is drained through RowFromBatchAdapter, and a
/// stream aggregate above it re-enters batch via BatchFromRowAdapter.
class SortExecutor final : public Executor {
 public:
  SortExecutor(ExecContext* ctx, ExecutorPtr child, std::vector<SortKey> keys)
      : ctx_(ctx), child_(std::move(child)), keys_(std::move(keys)) {}

  Status Init() override;
  Result<bool> Next(Row* out) override;
  const Schema& OutputSchema() const override { return child_->OutputSchema(); }

 private:
  ExecContext* ctx_;
  ExecutorPtr child_;
  std::vector<SortKey> keys_;
  std::vector<Row> rows_;
  size_t pos_ = 0;
};

/// Emits at most `limit` child rows.
/// batch: opt-out — sits at the plan root above ORDER BY, where the
/// engine drains rows anyway; counting rows beats slicing batches.
class LimitExecutor final : public Executor {
 public:
  LimitExecutor(ExecutorPtr child, uint64_t limit)
      : child_(std::move(child)), limit_(limit) {}

  Status Init() override {
    emitted_ = 0;
    return child_->Init();
  }
  Result<bool> Next(Row* out) override {
    if (emitted_ >= limit_) return false;
    ELE_ASSIGN_OR_RETURN(bool has, child_->Next(out));
    if (!has) return false;
    emitted_++;
    return true;
  }
  const Schema& OutputSchema() const override { return child_->OutputSchema(); }

 private:
  ExecutorPtr child_;
  uint64_t limit_;
  uint64_t emitted_ = 0;
};

}  // namespace elephant
