#include "exec/simple_executors.h"

#include <algorithm>

namespace elephant {

Result<std::vector<Row>> ExecuteToVector(Executor* exec) {
  ELE_RETURN_NOT_OK(exec->Init());
  std::vector<Row> rows;
  Row row;
  while (true) {
    ELE_ASSIGN_OR_RETURN(bool has, exec->Next(&row));
    if (!has) break;
    rows.push_back(row);
  }
  return rows;
}

Result<bool> FilterExecutor::Next(Row* out) {
  while (true) {
    ELE_ASSIGN_OR_RETURN(bool has, child_->Next(out));
    if (!has) return false;
    ELE_ASSIGN_OR_RETURN(bool pass, EvalPredicate(*predicate_, *out));
    if (pass) return true;
  }
}

ProjectExecutor::ProjectExecutor(ExecutorPtr child, std::vector<ExprPtr> exprs,
                                 std::vector<std::string> names)
    : child_(std::move(child)), exprs_(std::move(exprs)) {
  std::vector<Column> cols;
  for (size_t i = 0; i < exprs_.size(); i++) {
    std::string name = i < names.size() && !names[i].empty()
                           ? names[i]
                           : exprs_[i]->ToString();
    cols.emplace_back(std::move(name), exprs_[i]->output_type(),
                      exprs_[i]->output_length());
  }
  schema_ = Schema(std::move(cols));
}

Result<bool> ProjectExecutor::Next(Row* out) {
  Row in;
  ELE_ASSIGN_OR_RETURN(bool has, child_->Next(&in));
  if (!has) return false;
  out->clear();
  out->reserve(exprs_.size());
  for (const ExprPtr& e : exprs_) {
    ELE_ASSIGN_OR_RETURN(Value v, e->Eval(in));
    out->push_back(std::move(v));
  }
  return true;
}

Status SortExecutor::Init() {
  ELE_RETURN_NOT_OK(child_->Init());
  rows_.clear();
  pos_ = 0;
  Row row;
  while (true) {
    ELE_ASSIGN_OR_RETURN(bool has, child_->Next(&row));
    if (!has) break;
    rows_.push_back(row);
  }
  ctx_->counters().sort_rows += rows_.size();
  // Pre-compute sort keys to avoid re-evaluating expressions in comparisons.
  std::vector<std::pair<std::string, size_t>> keyed(rows_.size());
  for (size_t i = 0; i < rows_.size(); i++) {
    std::string key;
    for (const SortKey& sk : keys_) {
      auto v = sk.expr->Eval(rows_[i]);
      if (!v.ok()) return v.status();
      if (sk.ascending) {
        keycodec::Encode(v.value(), &key);
      } else {
        // Descending: complement the encoded bytes so memcmp order flips.
        std::string enc;
        keycodec::Encode(v.value(), &enc);
        for (char& c : enc) c = static_cast<char>(~static_cast<unsigned char>(c));
        key += enc;
        key.push_back('\x00');  // terminator to avoid prefix aliasing
      }
    }
    keyed[i] = {std::move(key), i};
  }
  std::sort(keyed.begin(), keyed.end());
  std::vector<Row> sorted;
  sorted.reserve(rows_.size());
  for (const auto& [key, idx] : keyed) sorted.push_back(std::move(rows_[idx]));
  rows_ = std::move(sorted);
  return Status::OK();
}

Result<bool> SortExecutor::Next(Row* out) {
  if (pos_ >= rows_.size()) return false;
  *out = rows_[pos_++];
  return true;
}

}  // namespace elephant
