#pragma once

#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "exec/executor.h"
#include "exec/scan_executor.h"
#include "obs/plan_stats.h"
#include "sched/thread_pool.h"

namespace elephant {

/// One morsel's executor pipeline plus its instrumentation hookups.
///
/// `stats` pairs a fresh per-morsel OperatorStats slot (written by an
/// InstrumentedExecutor inside this pipeline) with the shared plan-tree slot
/// it should eventually be folded into. The worker accumulates per-morsel
/// slots locally; GatherExecutor merges them into the plan-tree slots on the
/// session thread after all workers have finished, so the shared slots are
/// never written concurrently.
struct MorselPlan {
  ExecutorPtr exec;
  std::vector<std::pair<std::shared_ptr<obs::OperatorStats>,
                        std::shared_ptr<obs::OperatorStats>>>
      stats;
};

/// Builds a fresh executor pipeline covering one morsel (key sub-range).
/// Called on worker threads; must only touch the thread-safe shared state
/// reachable through the given per-worker ExecContext.
using MorselPlanFactory =
    std::function<Result<MorselPlan>(const KeyRange& morsel, ExecContext* ctx)>;

/// Exchange operator for morsel-driven parallel scans.
///
/// Init() runs `workers` workers (workers-1 pool tasks plus the session
/// thread itself via TaskGroup::RunInline): each worker pops the next morsel
/// index from a shared counter, builds that morsel's pipeline through the
/// factory, and drains it into a per-morsel buffer. Next() then emits the
/// buffered rows in morsel order — i.e. cluster-key order — so the output
/// row sequence is identical to the serial plan's, independent of worker
/// count and thread timing.
///
/// Per-query accounting stays exact under concurrency: each worker runs
/// under its own IoSink (IoScope), and after the barrier the worker sinks
/// are folded into the sink that was current when Init() began (the query's
/// sink). Worker ExecCounters and per-morsel operator stats are merged the
/// same way. An error from any morsel cancels the remaining morsels via
/// TaskGroup and is returned from Init().
/// batch: opt-out — exchange operator; it merges per-morsel ROW streams
/// in morsel order, so batch morsel pipelines end in a RowFromBatchAdapter
/// and Gather itself never sees a Batch.
class GatherExecutor final : public Executor {
 public:
  GatherExecutor(ExecContext* ctx, sched::ThreadPool* pool, size_t workers,
                 std::vector<KeyRange> morsels, MorselPlanFactory factory,
                 Schema schema);

  Status Init() override;
  Result<bool> Next(Row* out) override;
  const Schema& OutputSchema() const override { return schema_; }

  size_t num_morsels() const { return morsels_.size(); }

 private:
  ExecContext* ctx_;
  sched::ThreadPool* pool_;
  size_t workers_;
  std::vector<KeyRange> morsels_;
  MorselPlanFactory factory_;
  Schema schema_;

  /// Row buffers indexed by morsel; emitted in morsel order.
  std::vector<std::vector<Row>> chunks_;
  size_t chunk_ = 0;
  size_t pos_ = 0;
};

}  // namespace elephant
