#pragma once

#include <memory>

#include "common/schema.h"
#include "common/status.h"
#include "storage/buffer_pool.h"

namespace elephant {

namespace sched {
class ThreadPool;
}  // namespace sched

/// Counters gathered while a plan runs. `index_seeks` counts inner-side index
/// probes of index nested-loop joins — the "context switches" the paper's
/// optimized Q3 rewrite (Figure 4(b)) is designed to reduce.
///
/// `rows_output` is the number of rows the PLAN ROOT emitted to the client;
/// the engine assigns it once when the drain loop finishes. Operators must
/// not bump it per intermediate row — doing so over-counted under
/// LIMIT-atop-Gather and double-counted multi-stage aggregation, and would
/// diverge between the row and batch engines.
struct ExecCounters {
  uint64_t rows_output = 0;
  uint64_t index_seeks = 0;
  uint64_t rows_scanned = 0;
  uint64_t sort_rows = 0;
};

/// Shared state for one query execution. When a worker pool is attached via
/// `set_scheduler`, the planner may choose parallel (Gather-based) plans;
/// without one every plan runs serially on the calling thread.
class ExecContext {
 public:
  explicit ExecContext(BufferPool* pool) : pool_(pool) {}

  BufferPool* pool() const { return pool_; }
  ExecCounters& counters() { return counters_; }

  sched::ThreadPool* scheduler() const { return scheduler_; }
  void set_scheduler(sched::ThreadPool* scheduler) { scheduler_ = scheduler; }

  /// Whether the planner may choose the vectorized batch pipeline for
  /// eligible (sub)plans. On by default; DatabaseOptions::batch_execution
  /// and the NO_BATCH hint turn it off per-database / per-query.
  bool batch_enabled() const { return batch_enabled_; }
  void set_batch_enabled(bool enabled) { batch_enabled_ = enabled; }

 private:
  BufferPool* pool_;
  ExecCounters counters_;
  sched::ThreadPool* scheduler_ = nullptr;
  bool batch_enabled_ = true;
};

/// Volcano-style executor: Init() once, then Next() until it yields false.
class Executor {
 public:
  virtual ~Executor() = default;

  virtual Status Init() = 0;

  /// Produces the next row into `out`. Returns false at end of stream.
  virtual Result<bool> Next(Row* out) = 0;

  virtual const Schema& OutputSchema() const = 0;
};

using ExecutorPtr = std::unique_ptr<Executor>;

/// Drains an executor into a vector of rows (Init + all Next calls).
Result<std::vector<Row>> ExecuteToVector(Executor* exec);

}  // namespace elephant
