#pragma once

#include <memory>

#include "common/schema.h"
#include "common/status.h"
#include "storage/buffer_pool.h"

namespace elephant {

namespace sched {
class ThreadPool;
}  // namespace sched

/// Counters gathered while a plan runs. `index_seeks` counts inner-side index
/// probes of index nested-loop joins — the "context switches" the paper's
/// optimized Q3 rewrite (Figure 4(b)) is designed to reduce.
struct ExecCounters {
  uint64_t rows_output = 0;
  uint64_t index_seeks = 0;
  uint64_t rows_scanned = 0;
  uint64_t sort_rows = 0;
};

/// Shared state for one query execution. When a worker pool is attached via
/// `set_scheduler`, the planner may choose parallel (Gather-based) plans;
/// without one every plan runs serially on the calling thread.
class ExecContext {
 public:
  explicit ExecContext(BufferPool* pool) : pool_(pool) {}

  BufferPool* pool() const { return pool_; }
  ExecCounters& counters() { return counters_; }

  sched::ThreadPool* scheduler() const { return scheduler_; }
  void set_scheduler(sched::ThreadPool* scheduler) { scheduler_ = scheduler; }

 private:
  BufferPool* pool_;
  ExecCounters counters_;
  sched::ThreadPool* scheduler_ = nullptr;
};

/// Volcano-style executor: Init() once, then Next() until it yields false.
class Executor {
 public:
  virtual ~Executor() = default;

  virtual Status Init() = 0;

  /// Produces the next row into `out`. Returns false at end of stream.
  virtual Result<bool> Next(Row* out) = 0;

  virtual const Schema& OutputSchema() const = 0;
};

using ExecutorPtr = std::unique_ptr<Executor>;

/// Drains an executor into a vector of rows (Init + all Next calls).
Result<std::vector<Row>> ExecuteToVector(Executor* exec);

}  // namespace elephant
