#include "exec/batch_executors.h"

namespace elephant {

namespace {

/// Group-key and aggregate-argument vectors for one input batch: the
/// vectorized front half of aggregation. The fold itself then walks live
/// rows in batch order — the same order the row engine sees them — through
/// the shared AggState accumulators.
struct AggInputVectors {
  std::vector<std::vector<Value>> group_cols;
  std::vector<std::vector<Value>> agg_cols;  ///< unused entry for COUNT(*)
};

Status EvalAggInputs(const Batch& in, const std::vector<uint32_t>& positions,
                     const std::vector<ExprPtr>& group_exprs,
                     const std::vector<AggSpec>& aggs, AggInputVectors* v) {
  v->group_cols.resize(group_exprs.size());
  for (size_t g = 0; g < group_exprs.size(); ++g) {
    ELE_RETURN_NOT_OK(
        group_exprs[g]->EvalBatch(in, positions, &v->group_cols[g]));
  }
  v->agg_cols.resize(aggs.size());
  for (size_t a = 0; a < aggs.size(); ++a) {
    if (aggs[a].fn == AggFunc::kCountStar) continue;
    ELE_RETURN_NOT_OK(aggs[a].arg->EvalBatch(in, positions, &v->agg_cols[a]));
  }
  return Status::OK();
}

std::string EncodeGroupKeyAt(const AggInputVectors& v, uint32_t pos,
                             Row* values_out) {
  std::string key;
  values_out->clear();
  for (const auto& col : v.group_cols) {
    keycodec::Encode(col[pos], &key);
    values_out->push_back(col[pos]);
  }
  return key;
}

Status AccumulateAt(const std::vector<AggSpec>& aggs, const AggInputVectors& v,
                    uint32_t pos, std::vector<AggState>* states) {
  for (size_t i = 0; i < aggs.size(); ++i) {
    if (aggs[i].fn == AggFunc::kCountStar) {
      ELE_RETURN_NOT_OK((*states)[i].Accumulate(Value()));
    } else {
      ELE_RETURN_NOT_OK((*states)[i].Accumulate(v.agg_cols[i][pos]));
    }
  }
  return Status::OK();
}

}  // namespace

// ---- Scans ----

Status BatchClusteredScanExecutor::Init() {
  ELE_ASSIGN_OR_RETURN(Table::RowIterator it,
                       table_->ScanRange(range_.lo, range_.hi, intent_));
  it_.emplace(std::move(it));
  return Status::OK();
}

Result<bool> BatchClusteredScanExecutor::NextBatch(Batch* out) {
  out->Reset(table_->schema().NumColumns());
  Row row;
  while (!out->full() && it_->Valid()) {
    ELE_RETURN_NOT_OK(it_->Current(&row));
    ELE_RETURN_NOT_OK(it_->Next());
    ctx_->counters().rows_scanned++;
    out->AppendRowMove(std::move(row));
  }
  return out->num_rows() > 0;
}

Status BatchSecondaryIndexScanExecutor::Init() {
  BPlusTree::Iterator it;
  if (range_.lo.empty()) {
    ELE_ASSIGN_OR_RETURN(it, index_->tree->SeekToFirst(intent_));
  } else {
    ELE_ASSIGN_OR_RETURN(it, index_->tree->Seek(range_.lo, intent_));
  }
  it_.emplace(std::move(it));
  return Status::OK();
}

Result<bool> BatchSecondaryIndexScanExecutor::NextBatch(Batch* out) {
  out->Reset(index_->out_schema.NumColumns());
  Row row;
  while (!out->full() && it_->Valid()) {
    const std::string_view key = it_->key();
    if (!range_.hi.empty() && key >= std::string_view(range_.hi)) break;
    ELE_RETURN_NOT_OK(
        DecodeSecondaryIndexRow(*table_, *index_, key, it_->value(), &row));
    ELE_RETURN_NOT_OK(it_->Next());
    ctx_->counters().rows_scanned++;
    out->AppendRowMove(std::move(row));
  }
  return out->num_rows() > 0;
}

// ---- Filter / projection ----

Result<bool> BatchFilterExecutor::NextBatch(Batch* out) {
  while (true) {
    ELE_ASSIGN_OR_RETURN(bool has, child_->NextBatch(out));
    if (!has) return false;
    if (out->empty()) continue;
    ELE_RETURN_NOT_OK(ApplyFilterToBatch(*predicate_, out));
    if (!out->empty()) return true;
  }
}

BatchProjectExecutor::BatchProjectExecutor(BatchExecutorPtr child,
                                           std::vector<ExprPtr> exprs,
                                           std::vector<std::string> names)
    : child_(std::move(child)), exprs_(std::move(exprs)) {
  std::vector<Column> cols;
  for (size_t i = 0; i < exprs_.size(); i++) {
    std::string name = i < names.size() && !names[i].empty()
                           ? names[i]
                           : exprs_[i]->ToString();
    cols.emplace_back(std::move(name), exprs_[i]->output_type(),
                      exprs_[i]->output_length());
  }
  schema_ = Schema(std::move(cols));
}

Result<bool> BatchProjectExecutor::NextBatch(Batch* out) {
  Batch in;
  while (true) {
    ELE_ASSIGN_OR_RETURN(bool has, child_->NextBatch(&in));
    if (!has) return false;
    if (!in.empty()) break;
  }
  const std::vector<uint32_t> positions = in.ActiveIndices();
  out->Reset(exprs_.size());
  std::vector<Value> result;
  for (size_t e = 0; e < exprs_.size(); ++e) {
    ELE_RETURN_NOT_OK(exprs_[e]->EvalBatch(in, positions, &result));
    auto& col = out->col(e);
    col.reserve(positions.size());
    for (uint32_t pos : positions) col.push_back(std::move(result[pos]));
  }
  out->SetRowCount(static_cast<uint32_t>(positions.size()));
  return true;
}

// ---- Hash aggregation ----

BatchHashAggregateExecutor::BatchHashAggregateExecutor(
    ExecContext* ctx, BatchExecutorPtr child, std::vector<ExprPtr> group_exprs,
    std::vector<AggSpec> aggs)
    : ctx_(ctx),
      child_(std::move(child)),
      group_exprs_(std::move(group_exprs)),
      aggs_(std::move(aggs)) {
  schema_ = MakeAggOutputSchema(child_->OutputSchema(), group_exprs_, aggs_);
}

Status BatchHashAggregateExecutor::Init() {
  ELE_RETURN_NOT_OK(child_->Init());
  groups_.clear();
  Batch in;
  AggInputVectors v;
  Row group_values;
  while (true) {
    ELE_ASSIGN_OR_RETURN(bool has, child_->NextBatch(&in));
    if (!has) break;
    const std::vector<uint32_t> positions = in.ActiveIndices();
    ELE_RETURN_NOT_OK(EvalAggInputs(in, positions, group_exprs_, aggs_, &v));
    for (uint32_t pos : positions) {
      std::string key = EncodeGroupKeyAt(v, pos, &group_values);
      auto it = groups_.find(key);
      if (it == groups_.end()) {
        it = groups_
                 .emplace(std::move(key),
                          Group{group_values, FreshAggStates(aggs_)})
                 .first;
      }
      ELE_RETURN_NOT_OK(AccumulateAt(aggs_, v, pos, &it->second.states));
    }
  }
  // Scalar aggregation (no GROUP BY) over empty input yields one row.
  if (group_exprs_.empty() && groups_.empty()) {
    groups_.emplace(std::string(), Group{Row{}, FreshAggStates(aggs_)});
  }
  emit_it_ = groups_.begin();
  inited_ = true;
  return Status::OK();
}

Result<bool> BatchHashAggregateExecutor::NextBatch(Batch* out) {
  out->Reset(schema_.NumColumns());
  if (!inited_) return false;
  Row row;
  while (!out->full() && emit_it_ != groups_.end()) {
    row.clear();
    for (const Value& gv : emit_it_->second.group_values) row.push_back(gv);
    for (const AggState& s : emit_it_->second.states) row.push_back(s.Finalize());
    out->AppendRowMove(std::move(row));
    ++emit_it_;
  }
  return out->num_rows() > 0;
}

// ---- Stream aggregation ----

BatchStreamAggregateExecutor::BatchStreamAggregateExecutor(
    ExecContext* ctx, BatchExecutorPtr child, std::vector<ExprPtr> group_exprs,
    std::vector<AggSpec> aggs)
    : ctx_(ctx),
      child_(std::move(child)),
      group_exprs_(std::move(group_exprs)),
      aggs_(std::move(aggs)) {
  schema_ = MakeAggOutputSchema(child_->OutputSchema(), group_exprs_, aggs_);
}

Status BatchStreamAggregateExecutor::Init() {
  ELE_RETURN_NOT_OK(child_->Init());
  has_group_ = false;
  child_done_ = false;
  final_emitted_ = false;
  pending_.clear();
  return Status::OK();
}

Row BatchStreamAggregateExecutor::FinishCurrent() {
  Row out;
  out.reserve(current_values_.size() + states_.size());
  for (const Value& v : current_values_) out.push_back(v);
  for (const AggState& s : states_) out.push_back(s.Finalize());
  has_group_ = false;
  return out;
}

Status BatchStreamAggregateExecutor::ConsumeBatch(const Batch& in) {
  const std::vector<uint32_t> positions = in.ActiveIndices();
  AggInputVectors v;
  Row group_values;
  ELE_RETURN_NOT_OK(EvalAggInputs(in, positions, group_exprs_, aggs_, &v));
  for (uint32_t pos : positions) {
    std::string key = EncodeGroupKeyAt(v, pos, &group_values);
    if (has_group_ && key != current_key_) {
      // Group boundary (possibly mid-batch, possibly the carry-over from a
      // previous batch): finish the old group before starting the new one.
      pending_.push_back(FinishCurrent());
    }
    if (!has_group_) {
      has_group_ = true;
      current_key_ = std::move(key);
      current_values_ = std::move(group_values);
      states_ = FreshAggStates(aggs_);
    }
    ELE_RETURN_NOT_OK(AccumulateAt(aggs_, v, pos, &states_));
  }
  return Status::OK();
}

Result<bool> BatchStreamAggregateExecutor::NextBatch(Batch* out) {
  out->Reset(schema_.NumColumns());
  while (!out->full()) {
    if (!pending_.empty()) {
      out->AppendRowMove(std::move(pending_.front()));
      pending_.pop_front();
      continue;
    }
    if (child_done_) {
      if (final_emitted_) break;
      final_emitted_ = true;
      if (has_group_) {
        pending_.push_back(FinishCurrent());
      } else if (group_exprs_.empty()) {
        // Scalar aggregate over empty input: one row of empty-group states.
        states_ = FreshAggStates(aggs_);
        current_values_.clear();
        has_group_ = true;
        pending_.push_back(FinishCurrent());
      }
      continue;
    }
    ELE_ASSIGN_OR_RETURN(bool has, child_->NextBatch(&in_));
    if (!has) {
      child_done_ = true;
      continue;
    }
    ELE_RETURN_NOT_OK(ConsumeBatch(in_));
  }
  return out->num_rows() > 0;
}

// ---- Partial / final aggregation (parallel halves) ----

BatchPartialAggregateExecutor::BatchPartialAggregateExecutor(
    ExecContext* ctx, BatchExecutorPtr child, std::vector<ExprPtr> group_exprs,
    std::vector<AggSpec> aggs)
    : ctx_(ctx),
      child_(std::move(child)),
      group_exprs_(std::move(group_exprs)),
      aggs_(std::move(aggs)) {
  schema_ = MakePartialAggSchema(group_exprs_, aggs_);
}

Status BatchPartialAggregateExecutor::Init() {
  ELE_RETURN_NOT_OK(child_->Init());
  groups_.clear();
  Batch in;
  AggInputVectors v;
  Row group_values;
  while (true) {
    ELE_ASSIGN_OR_RETURN(bool has, child_->NextBatch(&in));
    if (!has) break;
    const std::vector<uint32_t> positions = in.ActiveIndices();
    ELE_RETURN_NOT_OK(EvalAggInputs(in, positions, group_exprs_, aggs_, &v));
    for (uint32_t pos : positions) {
      std::string key = EncodeGroupKeyAt(v, pos, &group_values);
      auto it = groups_.find(key);
      if (it == groups_.end()) {
        it = groups_
                 .emplace(std::move(key),
                          Group{group_values, FreshAggStates(aggs_)})
                 .first;
      }
      ELE_RETURN_NOT_OK(AccumulateAt(aggs_, v, pos, &it->second.states));
    }
  }
  // A scalar partial aggregate always contributes one transfer row, even
  // over an empty morsel, so the final merge sees COUNT() = 0 etc.
  if (group_exprs_.empty() && groups_.empty()) {
    groups_.emplace(std::string(), Group{Row{}, FreshAggStates(aggs_)});
  }
  emit_it_ = groups_.begin();
  inited_ = true;
  return Status::OK();
}

Result<bool> BatchPartialAggregateExecutor::NextBatch(Batch* out) {
  out->Reset(schema_.NumColumns());
  if (!inited_) return false;
  Row row;
  while (!out->full() && emit_it_ != groups_.end()) {
    row.clear();
    for (const Value& gv : emit_it_->second.group_values) row.push_back(gv);
    for (const AggState& s : emit_it_->second.states) s.AppendPartial(&row);
    out->AppendRowMove(std::move(row));
    ++emit_it_;
  }
  return out->num_rows() > 0;
}

BatchFinalAggregateExecutor::BatchFinalAggregateExecutor(
    ExecContext* ctx, BatchExecutorPtr child, size_t num_groups,
    std::vector<AggSpec> aggs, Schema output_schema)
    : ctx_(ctx),
      child_(std::move(child)),
      num_groups_(num_groups),
      aggs_(std::move(aggs)),
      schema_(std::move(output_schema)) {}

Status BatchFinalAggregateExecutor::Init() {
  ELE_RETURN_NOT_OK(child_->Init());
  groups_.clear();
  Batch in;
  Row row;
  while (true) {
    ELE_ASSIGN_OR_RETURN(bool has, child_->NextBatch(&in));
    if (!has) break;
    const uint32_t n = in.ActiveCount();
    for (uint32_t i = 0; i < n; ++i) {
      in.GatherRow(in.ActiveIndex(i), &row);
      std::string key;
      for (size_t g = 0; g < num_groups_; g++) keycodec::Encode(row[g], &key);
      auto it = groups_.find(key);
      if (it == groups_.end()) {
        Row group_values(row.begin(), row.begin() + static_cast<long>(num_groups_));
        it = groups_
                 .emplace(std::move(key),
                          Group{std::move(group_values), FreshAggStates(aggs_)})
                 .first;
      }
      size_t pos = num_groups_;
      for (size_t a = 0; a < aggs_.size(); a++) {
        ELE_RETURN_NOT_OK(it->second.states[a].MergePartial(row, pos));
        pos += AggState::PartialWidth(aggs_[a].fn);
      }
    }
  }
  // Scalar aggregation over zero partial rows (e.g. an empty key range
  // produced no morsels) still yields one output row, like the serial plan.
  if (num_groups_ == 0 && groups_.empty()) {
    groups_.emplace(std::string(), Group{Row{}, FreshAggStates(aggs_)});
  }
  emit_it_ = groups_.begin();
  inited_ = true;
  return Status::OK();
}

Result<bool> BatchFinalAggregateExecutor::NextBatch(Batch* out) {
  out->Reset(schema_.NumColumns());
  if (!inited_) return false;
  Row row;
  while (!out->full() && emit_it_ != groups_.end()) {
    row.clear();
    row.reserve(num_groups_ + aggs_.size());
    for (const Value& gv : emit_it_->second.group_values) row.push_back(gv);
    for (const AggState& s : emit_it_->second.states) row.push_back(s.Finalize());
    out->AppendRowMove(std::move(row));
    ++emit_it_;
  }
  return out->num_rows() > 0;
}

// ---- Adapters ----

Result<bool> RowFromBatchAdapter::Next(Row* out) {
  while (idx_ >= batch_.ActiveCount()) {
    if (done_) return false;
    ELE_ASSIGN_OR_RETURN(bool has, child_->NextBatch(&batch_));
    if (!has) {
      done_ = true;
      return false;
    }
    idx_ = 0;
  }
  batch_.GatherRow(batch_.ActiveIndex(idx_++), out);
  return true;
}

Result<bool> BatchFromRowAdapter::NextBatch(Batch* out) {
  out->Reset(child_->OutputSchema().NumColumns());
  if (done_) return false;
  Row row;
  while (!out->full()) {
    ELE_ASSIGN_OR_RETURN(bool has, child_->Next(&row));
    if (!has) {
      done_ = true;
      break;
    }
    out->AppendRowMove(std::move(row));
  }
  return out->num_rows() > 0;
}

}  // namespace elephant
