#pragma once

#include <optional>
#include <unordered_map>

#include "exec/executor.h"
#include "exec/expression.h"
#include "exec/scan_executor.h"

namespace elephant {

/// Correlated bounds on the inner index of an index nested-loop join,
/// evaluated against each *outer* row: `eq_exprs` pin a prefix of the inner
/// index key by equality; then an optional [lo, hi] range (with inclusivity
/// flags) constrains the next key column.
///
/// The paper's band join `T1.f BETWEEN T0.f AND T0.f + T0.c - 1` maps to
/// eq_exprs = {}, lo = T0.f (inclusive), hi = T0.f + T0.c - 1 (inclusive)
/// with the inner side being the c-table clustered on f.
struct InljBounds {
  std::vector<ExprPtr> eq_exprs;
  ExprPtr lo;
  bool lo_inclusive = true;
  ExprPtr hi;
  bool hi_inclusive = true;

  InljBounds Clone() const;
};

/// Index nested-loop join: for each outer row, seeks the inner table's
/// clustered index (or a secondary covering index) with bounds computed from
/// the outer row, emitting outer ++ inner rows that pass the residual
/// predicate. Every inner probe increments ExecCounters::index_seeks — the
/// "context switches" the paper's Figure 4(b) optimization minimizes.
/// batch: opt-out — joins are row-at-a-time; the planner calls
/// EnsureRows() on every input before a join is built.
class IndexNestedLoopJoinExecutor final : public Executor {
 public:
  /// Inner = clustered index of `inner_table` when `inner_index` is null,
  /// else the given secondary covering index.
  IndexNestedLoopJoinExecutor(ExecContext* ctx, ExecutorPtr outer,
                              const Table* inner_table,
                              const SecondaryIndex* inner_index,
                              InljBounds bounds, ExprPtr residual);

  Status Init() override;
  Result<bool> Next(Row* out) override;
  const Schema& OutputSchema() const override { return schema_; }

 private:
  /// Opens the inner scan for the current outer row.
  Status OpenInner();

  ExecContext* ctx_;
  ExecutorPtr outer_;
  const Table* inner_table_;
  const SecondaryIndex* inner_index_;
  InljBounds bounds_;
  ExprPtr residual_;
  Schema schema_;

  Row outer_row_;
  bool outer_valid_ = false;
  ExecutorPtr inner_scan_;
};

/// Hash join on equality keys: builds a hash table on the right child, then
/// probes with the left. Output = left ++ right.
/// batch: opt-out — joins are row-at-a-time (see
/// IndexNestedLoopJoinExecutor).
class HashJoinExecutor final : public Executor {
 public:
  HashJoinExecutor(ExecContext* ctx, ExecutorPtr left, ExecutorPtr right,
                   std::vector<ExprPtr> left_keys, std::vector<ExprPtr> right_keys,
                   ExprPtr residual);

  Status Init() override;
  Result<bool> Next(Row* out) override;
  const Schema& OutputSchema() const override { return schema_; }

 private:
  Result<std::string> EncodeKeys(const std::vector<ExprPtr>& exprs, const Row& row);

  ExecContext* ctx_;
  ExecutorPtr left_, right_;
  std::vector<ExprPtr> left_keys_, right_keys_;
  ExprPtr residual_;
  Schema schema_;

  std::unordered_multimap<std::string, Row> build_;
  Row probe_row_;
  bool probe_valid_ = false;
  std::pair<std::unordered_multimap<std::string, Row>::iterator,
            std::unordered_multimap<std::string, Row>::iterator>
      matches_;
};

/// Merge-style band join over two sorted inputs: the outer rows carry ranges
/// [lo(outer), hi(outer)] (ascending, non-partially-overlapping — the
/// c-table property of §2.2.1); the inner rows carry points point(inner) in
/// ascending order. Emits outer ++ inner for every containment. Both inputs
/// are consumed exactly once — this is the "merge join" plan the paper says
/// the optimizer wrongly prefers over INLJ when it ignores data properties
/// (§3 "Query hints"): it must read the *entire* inner input even when the
/// outer ranges are highly selective.
/// batch: opt-out — joins are row-at-a-time (see
/// IndexNestedLoopJoinExecutor).
class BandMergeJoinExecutor final : public Executor {
 public:
  BandMergeJoinExecutor(ExecContext* ctx, ExecutorPtr outer, ExecutorPtr inner,
                        ExprPtr outer_lo, ExprPtr outer_hi, ExprPtr inner_point,
                        ExprPtr residual);

  Status Init() override;
  Result<bool> Next(Row* out) override;
  const Schema& OutputSchema() const override { return schema_; }

 private:
  Status AdvanceOuter();
  Status AdvanceInner();

  ExecContext* ctx_;
  ExecutorPtr outer_, inner_;
  ExprPtr outer_lo_, outer_hi_, inner_point_;
  ExprPtr residual_;
  Schema schema_;

  Row outer_row_, inner_row_;
  bool outer_valid_ = false, inner_valid_ = false;
  Value lo_, hi_, point_;
};

}  // namespace elephant
