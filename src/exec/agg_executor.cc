#include "exec/agg_executor.h"

namespace elephant {

Schema MakeAggOutputSchema(const Schema& input, const std::vector<ExprPtr>& groups,
                           const std::vector<AggSpec>& aggs) {
  std::vector<Column> cols;
  for (const ExprPtr& g : groups) {
    cols.emplace_back(g->ToString(), g->output_type(), g->output_length());
  }
  for (const AggSpec& a : aggs) {
    std::string name = !a.name.empty()
                           ? a.name
                           : std::string(AggFuncName(a.fn)) +
                                 (a.arg ? "(" + a.arg->ToString() + ")" : "");
    cols.emplace_back(std::move(name), a.OutputType(), a.OutputLength());
  }
  return Schema(std::move(cols));
}

namespace {

Result<std::string> EncodeGroupKey(const std::vector<ExprPtr>& exprs, const Row& row,
                                   Row* values_out) {
  std::string key;
  values_out->clear();
  for (const ExprPtr& e : exprs) {
    ELE_ASSIGN_OR_RETURN(Value v, e->Eval(row));
    keycodec::Encode(v, &key);
    values_out->push_back(std::move(v));
  }
  return key;
}

Status AccumulateAggs(const std::vector<AggSpec>& aggs, std::vector<AggState>* states,
                      const Row& row) {
  for (size_t i = 0; i < aggs.size(); i++) {
    if (aggs[i].fn == AggFunc::kCountStar) {
      ELE_RETURN_NOT_OK((*states)[i].Accumulate(Value()));
    } else {
      auto v = aggs[i].arg->Eval(row);
      if (!v.ok()) return v.status();
      ELE_RETURN_NOT_OK((*states)[i].Accumulate(v.value()));
    }
  }
  return Status::OK();
}

}  // namespace

std::vector<AggState> FreshAggStates(const std::vector<AggSpec>& aggs) {
  std::vector<AggState> states;
  states.reserve(aggs.size());
  for (const AggSpec& a : aggs) states.emplace_back(a.fn);
  return states;
}

HashAggregateExecutor::HashAggregateExecutor(ExecContext* ctx, ExecutorPtr child,
                                             std::vector<ExprPtr> group_exprs,
                                             std::vector<AggSpec> aggs)
    : ctx_(ctx),
      child_(std::move(child)),
      group_exprs_(std::move(group_exprs)),
      aggs_(std::move(aggs)) {
  schema_ = MakeAggOutputSchema(child_->OutputSchema(), group_exprs_, aggs_);
}

Status HashAggregateExecutor::Init() {
  ELE_RETURN_NOT_OK(child_->Init());
  groups_.clear();
  Row row, group_values;
  while (true) {
    ELE_ASSIGN_OR_RETURN(bool has, child_->Next(&row));
    if (!has) break;
    ELE_ASSIGN_OR_RETURN(std::string key,
                         EncodeGroupKey(group_exprs_, row, &group_values));
    auto it = groups_.find(key);
    if (it == groups_.end()) {
      it = groups_.emplace(std::move(key), Group{group_values, FreshAggStates(aggs_)})
               .first;
    }
    ELE_RETURN_NOT_OK(AccumulateAggs(aggs_, &it->second.states, row));
  }
  // Scalar aggregation (no GROUP BY) over empty input yields one row.
  if (group_exprs_.empty() && groups_.empty()) {
    groups_.emplace(std::string(), Group{Row{}, FreshAggStates(aggs_)});
  }
  emit_it_ = groups_.begin();
  inited_ = true;
  return Status::OK();
}

Result<bool> HashAggregateExecutor::Next(Row* out) {
  if (!inited_ || emit_it_ == groups_.end()) return false;
  out->clear();
  out->reserve(group_exprs_.size() + aggs_.size());
  for (const Value& v : emit_it_->second.group_values) out->push_back(v);
  for (const AggState& s : emit_it_->second.states) out->push_back(s.Finalize());
  ++emit_it_;
  return true;
}

StreamAggregateExecutor::StreamAggregateExecutor(ExecContext* ctx, ExecutorPtr child,
                                                 std::vector<ExprPtr> group_exprs,
                                                 std::vector<AggSpec> aggs)
    : ctx_(ctx),
      child_(std::move(child)),
      group_exprs_(std::move(group_exprs)),
      aggs_(std::move(aggs)) {
  schema_ = MakeAggOutputSchema(child_->OutputSchema(), group_exprs_, aggs_);
}

Status StreamAggregateExecutor::Init() {
  ELE_RETURN_NOT_OK(child_->Init());
  has_group_ = false;
  child_done_ = false;
  return Status::OK();
}

void StreamAggregateExecutor::EmitCurrent(Row* out) {
  out->clear();
  out->reserve(current_values_.size() + states_.size());
  for (const Value& v : current_values_) out->push_back(v);
  for (const AggState& s : states_) out->push_back(s.Finalize());
  has_group_ = false;
}

Result<bool> StreamAggregateExecutor::Next(Row* out) {
  if (child_done_) {
    if (has_group_) {
      EmitCurrent(out);
      return true;
    }
    return false;
  }
  Row row, group_values;
  while (true) {
    ELE_ASSIGN_OR_RETURN(bool has, child_->Next(&row));
    if (!has) {
      child_done_ = true;
      if (has_group_) {
        EmitCurrent(out);
        return true;
      }
      // Scalar aggregate over empty input: one row of empty-group states.
      if (group_exprs_.empty()) {
        states_ = FreshAggStates(aggs_);
        current_values_.clear();
        has_group_ = true;
        EmitCurrent(out);
        return true;
      }
      return false;
    }
    ELE_ASSIGN_OR_RETURN(std::string key,
                         EncodeGroupKey(group_exprs_, row, &group_values));
    if (!has_group_) {
      has_group_ = true;
      current_key_ = std::move(key);
      current_values_ = std::move(group_values);
      states_ = FreshAggStates(aggs_);
      ELE_RETURN_NOT_OK(AccumulateAggs(aggs_, &states_, row));
      continue;
    }
    if (key == current_key_) {
      ELE_RETURN_NOT_OK(AccumulateAggs(aggs_, &states_, row));
      continue;
    }
    // Group boundary: emit the finished group, then start the new one.
    Row finished_out;
    EmitCurrent(&finished_out);
    *out = std::move(finished_out);
    has_group_ = true;
    current_key_ = std::move(key);
    current_values_ = std::move(group_values);
    states_ = FreshAggStates(aggs_);
    ELE_RETURN_NOT_OK(AccumulateAggs(aggs_, &states_, row));
    return true;
  }
}

Schema MakePartialAggSchema(const std::vector<ExprPtr>& groups,
                            const std::vector<AggSpec>& aggs) {
  std::vector<Column> cols;
  for (const ExprPtr& g : groups) {
    cols.emplace_back(g->ToString(), g->output_type(), g->output_length());
  }
  for (const AggSpec& a : aggs) AggState::AppendPartialColumns(a, &cols);
  return Schema(std::move(cols));
}

PartialAggregateExecutor::PartialAggregateExecutor(ExecContext* ctx,
                                                   ExecutorPtr child,
                                                   std::vector<ExprPtr> group_exprs,
                                                   std::vector<AggSpec> aggs)
    : ctx_(ctx),
      child_(std::move(child)),
      group_exprs_(std::move(group_exprs)),
      aggs_(std::move(aggs)) {
  schema_ = MakePartialAggSchema(group_exprs_, aggs_);
}

Status PartialAggregateExecutor::Init() {
  ELE_RETURN_NOT_OK(child_->Init());
  groups_.clear();
  Row row, group_values;
  while (true) {
    ELE_ASSIGN_OR_RETURN(bool has, child_->Next(&row));
    if (!has) break;
    ELE_ASSIGN_OR_RETURN(std::string key,
                         EncodeGroupKey(group_exprs_, row, &group_values));
    auto it = groups_.find(key);
    if (it == groups_.end()) {
      it = groups_.emplace(std::move(key), Group{group_values, FreshAggStates(aggs_)})
               .first;
    }
    ELE_RETURN_NOT_OK(AccumulateAggs(aggs_, &it->second.states, row));
  }
  // A scalar partial aggregate always contributes one transfer row, even
  // over an empty morsel, so the final merge sees COUNT() = 0 etc.
  if (group_exprs_.empty() && groups_.empty()) {
    groups_.emplace(std::string(), Group{Row{}, FreshAggStates(aggs_)});
  }
  emit_it_ = groups_.begin();
  inited_ = true;
  return Status::OK();
}

Result<bool> PartialAggregateExecutor::Next(Row* out) {
  if (!inited_ || emit_it_ == groups_.end()) return false;
  out->clear();
  for (const Value& v : emit_it_->second.group_values) out->push_back(v);
  for (const AggState& s : emit_it_->second.states) s.AppendPartial(out);
  ++emit_it_;
  return true;
}

FinalAggregateExecutor::FinalAggregateExecutor(ExecContext* ctx, ExecutorPtr child,
                                               size_t num_groups,
                                               std::vector<AggSpec> aggs,
                                               Schema output_schema)
    : ctx_(ctx),
      child_(std::move(child)),
      num_groups_(num_groups),
      aggs_(std::move(aggs)),
      schema_(std::move(output_schema)) {}

Status FinalAggregateExecutor::Init() {
  ELE_RETURN_NOT_OK(child_->Init());
  groups_.clear();
  Row row;
  while (true) {
    ELE_ASSIGN_OR_RETURN(bool has, child_->Next(&row));
    if (!has) break;
    std::string key;
    for (size_t i = 0; i < num_groups_; i++) keycodec::Encode(row[i], &key);
    auto it = groups_.find(key);
    if (it == groups_.end()) {
      Row group_values(row.begin(), row.begin() + static_cast<long>(num_groups_));
      it = groups_
               .emplace(std::move(key),
                        Group{std::move(group_values), FreshAggStates(aggs_)})
               .first;
    }
    size_t pos = num_groups_;
    for (size_t i = 0; i < aggs_.size(); i++) {
      ELE_RETURN_NOT_OK(it->second.states[i].MergePartial(row, pos));
      pos += AggState::PartialWidth(aggs_[i].fn);
    }
  }
  // Scalar aggregation over zero partial rows (e.g. an empty key range
  // produced no morsels) still yields one output row, like the serial plan.
  if (num_groups_ == 0 && groups_.empty()) {
    groups_.emplace(std::string(), Group{Row{}, FreshAggStates(aggs_)});
  }
  emit_it_ = groups_.begin();
  inited_ = true;
  return Status::OK();
}

Result<bool> FinalAggregateExecutor::Next(Row* out) {
  if (!inited_ || emit_it_ == groups_.end()) return false;
  out->clear();
  out->reserve(num_groups_ + aggs_.size());
  for (const Value& v : emit_it_->second.group_values) out->push_back(v);
  for (const AggState& s : emit_it_->second.states) out->push_back(s.Finalize());
  ++emit_it_;
  return true;
}

}  // namespace elephant
