#include "exec/parallel_executor.h"

#include <atomic>
#include <optional>
#include <unordered_map>

#include "obs/trace_log.h"
#include "sched/task_group.h"

namespace elephant {

namespace {

void AddOperatorStats(const obs::OperatorStats& from, obs::OperatorStats* to) {
  to->init_calls += from.init_calls;
  to->next_calls += from.next_calls;
  to->rows += from.rows;
  to->seconds += from.seconds;
  to->io.sequential_reads += from.io.sequential_reads;
  to->io.random_reads += from.io.random_reads;
  to->io.page_writes += from.io.page_writes;
  to->pool_hits += from.pool_hits;
  to->pool_misses += from.pool_misses;
}

void AddCounters(const ExecCounters& from, ExecCounters* to) {
  to->rows_output += from.rows_output;
  to->index_seeks += from.index_seeks;
  to->rows_scanned += from.rows_scanned;
  to->sort_rows += from.sort_rows;
}

}  // namespace

GatherExecutor::GatherExecutor(ExecContext* ctx, sched::ThreadPool* pool,
                               size_t workers, std::vector<KeyRange> morsels,
                               MorselPlanFactory factory, Schema schema)
    : ctx_(ctx),
      pool_(pool),
      workers_(workers == 0 ? 1 : workers),
      morsels_(std::move(morsels)),
      factory_(std::move(factory)),
      schema_(std::move(schema)) {}

Status GatherExecutor::Init() {
  chunks_.assign(morsels_.size(), {});
  chunk_ = 0;
  pos_ = 0;

  // The sink that was current when this query reached the exchange — worker
  // I/O is folded into it after the barrier, inside this operator's
  // instrumented window, so Gather's inclusive I/O covers its workers.
  IoSink* parent_sink = CurrentIoSink();

  // No point spinning up more workers than morsels.
  const size_t nworkers =
      morsels_.empty() ? 1 : std::min(workers_, morsels_.size());

  struct WorkerState {
    ExecCounters counters;
    IoSink sink;
    // Shared plan-tree slot -> stats accumulated by this worker across all
    // the morsels it ran. Merged into the shared slots post-barrier.
    std::unordered_map<obs::OperatorStats*, obs::OperatorStats> stats;
  };
  std::vector<WorkerState> states(nworkers);
  std::atomic<size_t> next_morsel{0};
  sched::TaskGroup group(pool_);

  auto worker_fn = [&](size_t w) -> Status {
    WorkerState& st = states[w];
    ExecContext worker_ctx(ctx_->pool());
    // Route this worker's I/O to its private sink. On the session thread
    // (the RunInline worker) this temporarily shadows the query sink.
    IoScope scope(&st.sink);
    while (!group.cancelled()) {
      const size_t i = next_morsel.fetch_add(1, std::memory_order_relaxed);
      if (i >= morsels_.size()) break;
      // One span per morsel (gated: the args build costs a string when on).
      std::optional<obs::TraceSpan> morsel_span;
      if (obs::TraceLog::Global().enabled()) {
        morsel_span.emplace("morsel", "exec",
                            obs::TraceArgs{{"morsel", std::to_string(i)}});
      }
      auto plan = factory_(morsels_[i], &worker_ctx);
      if (!plan.ok()) return plan.status();
      MorselPlan mp = std::move(plan).value();
      ELE_RETURN_NOT_OK(mp.exec->Init());
      Row row;
      while (true) {
        ELE_ASSIGN_OR_RETURN(bool has, mp.exec->Next(&row));
        if (!has) break;
        chunks_[i].push_back(std::move(row));
      }
      mp.exec.reset();  // release page pins before accounting
      for (auto& [slot, target] : mp.stats) {
        AddOperatorStats(*slot, &st.stats[target.get()]);
      }
    }
    st.counters = worker_ctx.counters();
    return Status::OK();
  };

  for (size_t w = 1; w < nworkers; w++) {
    group.Submit([&worker_fn, w] { return worker_fn(w); });
  }
  // The session thread contributes a worker share instead of blocking idle.
  group.RunInline([&worker_fn] { return worker_fn(0); });
  Status status = group.Wait();

  // Post-barrier merges, all on the session thread: worker I/O into the
  // query sink, worker counters into the session context, per-morsel
  // operator stats into the shared plan-tree slots.
  for (WorkerState& st : states) {
    if (parent_sink != nullptr) st.sink.AddTo(parent_sink);
    AddCounters(st.counters, &ctx_->counters());
    for (auto& [target, acc] : st.stats) AddOperatorStats(acc, target);
  }
  return status;
}

Result<bool> GatherExecutor::Next(Row* out) {
  while (chunk_ < chunks_.size()) {
    if (pos_ < chunks_[chunk_].size()) {
      *out = std::move(chunks_[chunk_][pos_++]);
      return true;
    }
    chunks_[chunk_].clear();
    chunks_[chunk_].shrink_to_fit();
    chunk_++;
    pos_ = 0;
  }
  return false;
}

}  // namespace elephant
