#pragma once

#include <vector>

#include "catalog/catalog.h"
#include "exec/executor.h"

namespace elephant {

/// Scans a virtual system table: materializes the provider's rows at Init()
/// (a consistent point-in-time snapshot of the engine state — counters read
/// mid-scan would tear) and streams them out Volcano-style. No pages are
/// touched, so virtual scans contribute zero physical I/O to the query's
/// IoStats — the property that lets `elephant_stat_*` queries be excluded
/// from the statement registry without skewing reconciliation.
/// batch: opt-out — virtual system tables are tiny introspection
/// snapshots; scans finish within a single batch of rows.
class VirtualTableScanExecutor final : public Executor {
 public:
  VirtualTableScanExecutor(ExecContext* ctx, const VirtualTable* vtable)
      : ctx_(ctx), vtable_(vtable) {}

  Status Init() override {
    ELE_ASSIGN_OR_RETURN(rows_, vtable_->provider());
    pos_ = 0;
    return Status::OK();
  }

  Result<bool> Next(Row* out) override {
    if (pos_ >= rows_.size()) return false;
    ctx_->counters().rows_scanned++;
    *out = rows_[pos_++];
    return true;
  }

  const Schema& OutputSchema() const override { return vtable_->schema; }

 private:
  ExecContext* ctx_;
  const VirtualTable* vtable_;
  std::vector<Row> rows_;
  size_t pos_ = 0;
};

}  // namespace elephant
