#pragma once

#include <optional>

#include "catalog/table.h"
#include "exec/executor.h"
#include "exec/expression.h"

namespace elephant {

/// A static key range over an index: an encoded lower bound (inclusive) and
/// upper bound (exclusive). Empty strings mean unbounded.
struct KeyRange {
  std::string lo;
  std::string hi;
};

/// Builds an encoded KeyRange from per-column bounds on the leading index
/// columns: `eq_values` constrain a prefix by equality; then an optional
/// range [lo, hi] (inclusive flags) on the next column.
KeyRange MakeKeyRange(const std::vector<Value>& eq_values,
                      const std::optional<Value>& lo, bool lo_inclusive,
                      const std::optional<Value>& hi, bool hi_inclusive);

/// Decodes one secondary-index entry into an output row: key columns from
/// the encoded key, include columns from the serialized payload. Shared by
/// the row and batch index-scan executors so both decode identically.
Status DecodeSecondaryIndexRow(const Table& table, const SecondaryIndex& index,
                               std::string_view key, std::string_view value,
                               Row* out);

/// Scans a table through its clustered index, optionally within a key range.
/// Output schema = the table schema. Range scans over a cluster-key prefix
/// touch only the qualifying leaves (sequential I/O on bulk-loaded tables).
/// batch: twin BatchClusteredScanExecutor (batch_executors.h).
class ClusteredScanExecutor final : public Executor {
 public:
  /// `intent` is the planner's access-pattern hint: full scans (and wide
  /// ranges) pass AccessIntent::kSequentialScan so the leaves they drag in
  /// recycle through the buffer pool's scan ring and prime the disk
  /// read-ahead window; selective ranges keep the default point intent.
  ClusteredScanExecutor(ExecContext* ctx, const Table* table, KeyRange range = {},
                        AccessIntent intent = AccessIntent::kPointLookup)
      : ctx_(ctx), table_(table), range_(std::move(range)), intent_(intent) {}

  Status Init() override;
  Result<bool> Next(Row* out) override;
  const Schema& OutputSchema() const override { return table_->schema(); }

 private:
  ExecContext* ctx_;
  const Table* table_;
  KeyRange range_;
  AccessIntent intent_;
  std::optional<Table::RowIterator> it_;
};

/// Scans a secondary covering index within a key range. Output schema =
/// index key columns followed by include columns (SecondaryIndex::out_schema).
/// batch: twin BatchSecondaryIndexScanExecutor (batch_executors.h) for
/// the covering case; non-covering scans fetch from the heap row-by-row
/// and stay on this executor.
class SecondaryIndexScanExecutor final : public Executor {
 public:
  /// `intent` as in ClusteredScanExecutor: kSequentialScan for full-index
  /// sweeps, point intent for selective probes.
  SecondaryIndexScanExecutor(ExecContext* ctx, const Table* table,
                             const SecondaryIndex* index, KeyRange range = {},
                             AccessIntent intent = AccessIntent::kPointLookup)
      : ctx_(ctx),
        table_(table),
        index_(index),
        range_(std::move(range)),
        intent_(intent) {}

  Status Init() override;
  Result<bool> Next(Row* out) override;
  const Schema& OutputSchema() const override { return index_->out_schema; }

 private:
  ExecContext* ctx_;
  const Table* table_;
  const SecondaryIndex* index_;
  KeyRange range_;
  AccessIntent intent_;
  std::optional<BPlusTree::Iterator> it_;
};

/// Emits a fixed list of rows (used for VALUES and for testing).
/// batch: opt-out — emits a tiny bound VALUES list; batching buys
/// nothing below one batch of input.
class ValuesExecutor final : public Executor {
 public:
  ValuesExecutor(Schema schema, std::vector<Row> rows)
      : schema_(std::move(schema)), rows_(std::move(rows)) {}

  Status Init() override {
    pos_ = 0;
    return Status::OK();
  }
  Result<bool> Next(Row* out) override {
    if (pos_ >= rows_.size()) return false;
    *out = rows_[pos_++];
    return true;
  }
  const Schema& OutputSchema() const override { return schema_; }

 private:
  Schema schema_;
  std::vector<Row> rows_;
  size_t pos_ = 0;
};

}  // namespace elephant
