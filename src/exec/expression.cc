#include "exec/expression.h"

#include "exec/batch.h"

namespace elephant {

const char* CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq: return "=";
    case CompareOp::kNe: return "<>";
    case CompareOp::kLt: return "<";
    case CompareOp::kLe: return "<=";
    case CompareOp::kGt: return ">";
    case CompareOp::kGe: return ">=";
  }
  return "?";
}

const char* ArithOpName(ArithOp op) {
  switch (op) {
    case ArithOp::kAdd: return "+";
    case ArithOp::kSub: return "-";
    case ArithOp::kMul: return "*";
    case ArithOp::kDiv: return "/";
  }
  return "?";
}

const char* AggFuncName(AggFunc fn) {
  switch (fn) {
    case AggFunc::kCountStar: return "COUNT(*)";
    case AggFunc::kCount: return "COUNT";
    case AggFunc::kSum: return "SUM";
    case AggFunc::kMin: return "MIN";
    case AggFunc::kMax: return "MAX";
    case AggFunc::kAvg: return "AVG";
  }
  return "?";
}

Result<Value> EvalCompareOp(CompareOp op, const Value& l, const Value& r) {
  if (l.is_null() || r.is_null()) return Value::Boolean(false);
  const int c = l.Compare(r);
  switch (op) {
    case CompareOp::kEq: return Value::Boolean(c == 0);
    case CompareOp::kNe: return Value::Boolean(c != 0);
    case CompareOp::kLt: return Value::Boolean(c < 0);
    case CompareOp::kLe: return Value::Boolean(c <= 0);
    case CompareOp::kGt: return Value::Boolean(c > 0);
    case CompareOp::kGe: return Value::Boolean(c >= 0);
  }
  return Status::Internal("bad compare op");
}

Result<Value> EvalArithOp(ArithOp op, const Value& l, const Value& r) {
  switch (op) {
    case ArithOp::kAdd: return l.Add(r);
    case ArithOp::kSub: return l.Subtract(r);
    case ArithOp::kMul: return l.Multiply(r);
    case ArithOp::kDiv: {
      // SQL `/` is exact here and always yields DOUBLE (deliberate
      // divergence from integer division) so derived averages such as
      // SUM(x)/COUNT(*) — used by view matching and the c-table rewriter —
      // are lossless.
      if (!IsNumeric(l.type()) || !IsNumeric(r.type())) {
        return Status::InvalidArgument("division of non-numeric types");
      }
      if (l.is_null() || r.is_null()) return Value::Null(TypeId::kDouble);
      const double denom = r.AsDouble();
      if (denom == 0) return Status::InvalidArgument("division by zero");
      return Value::Double(l.AsDouble() / denom);
    }
  }
  return Status::Internal("bad arith op");
}

Status Expr::EvalBatch(const Batch& batch,
                       const std::vector<uint32_t>& positions,
                       std::vector<Value>* out) const {
  out->resize(batch.num_rows());
  Row scratch;
  for (uint32_t pos : positions) {
    batch.GatherRow(pos, &scratch);
    ELE_ASSIGN_OR_RETURN((*out)[pos], Eval(scratch));
  }
  return Status::OK();
}

Status ColumnExpr::EvalBatch(const Batch& batch,
                             const std::vector<uint32_t>& /*positions*/,
                             std::vector<Value>* out) const {
  if (index_ >= batch.num_cols()) {
    return Status::ExecError("column index " + std::to_string(index_) +
                             " out of range (batch arity " +
                             std::to_string(batch.num_cols()) + ")");
  }
  // Copying the full column (not just the listed positions) is safe —
  // column reads have no side effects — and keeps the loop branch-free.
  *out = batch.col(index_);
  return Status::OK();
}

Status LiteralExpr::EvalBatch(const Batch& batch,
                              const std::vector<uint32_t>& /*positions*/,
                              std::vector<Value>* out) const {
  out->assign(batch.num_rows(), value_);
  return Status::OK();
}

Status CompareExpr::EvalBatch(const Batch& batch,
                              const std::vector<uint32_t>& positions,
                              std::vector<Value>* out) const {
  std::vector<Value> l, r;
  ELE_RETURN_NOT_OK(lhs_->EvalBatch(batch, positions, &l));
  ELE_RETURN_NOT_OK(rhs_->EvalBatch(batch, positions, &r));
  out->resize(batch.num_rows());
  for (uint32_t pos : positions) {
    ELE_ASSIGN_OR_RETURN((*out)[pos], EvalCompareOp(op_, l[pos], r[pos]));
  }
  return Status::OK();
}

Result<Value> CompareExpr::Eval(const Row& row) const {
  ELE_ASSIGN_OR_RETURN(Value l, lhs_->Eval(row));
  ELE_ASSIGN_OR_RETURN(Value r, rhs_->Eval(row));
  return EvalCompareOp(op_, l, r);
}

Result<Value> LogicalExpr::Eval(const Row& row) const {
  ELE_ASSIGN_OR_RETURN(Value l, lhs_->Eval(row));
  const bool lb = !l.is_null() && l.AsBool();
  if (op_ == LogicalOp::kAnd && !lb) return Value::Boolean(false);
  if (op_ == LogicalOp::kOr && lb) return Value::Boolean(true);
  ELE_ASSIGN_OR_RETURN(Value r, rhs_->Eval(row));
  return Value::Boolean(!r.is_null() && r.AsBool());
}

Status LogicalExpr::EvalBatch(const Batch& batch,
                              const std::vector<uint32_t>& positions,
                              std::vector<Value>* out) const {
  std::vector<Value> l;
  ELE_RETURN_NOT_OK(lhs_->EvalBatch(batch, positions, &l));
  out->resize(batch.num_rows());
  // Positional short-circuit, mirroring the row path exactly: the rhs is
  // evaluated only where the lhs does not already decide the result (AND
  // with false-ish lhs, OR with true lhs). This matters for errors, not
  // just speed — `x <> 0 AND 10 / x > 1` must never divide at x = 0.
  std::vector<uint32_t> undecided;
  undecided.reserve(positions.size());
  for (uint32_t pos : positions) {
    const bool lb = !l[pos].is_null() && l[pos].AsBool();
    if (op_ == LogicalOp::kAnd && !lb) {
      (*out)[pos] = Value::Boolean(false);
    } else if (op_ == LogicalOp::kOr && lb) {
      (*out)[pos] = Value::Boolean(true);
    } else {
      undecided.push_back(pos);
    }
  }
  if (!undecided.empty()) {
    std::vector<Value> r;
    ELE_RETURN_NOT_OK(rhs_->EvalBatch(batch, undecided, &r));
    for (uint32_t pos : undecided) {
      (*out)[pos] = Value::Boolean(!r[pos].is_null() && r[pos].AsBool());
    }
  }
  return Status::OK();
}

Result<Value> ArithExpr::Eval(const Row& row) const {
  ELE_ASSIGN_OR_RETURN(Value l, lhs_->Eval(row));
  ELE_ASSIGN_OR_RETURN(Value r, rhs_->Eval(row));
  return EvalArithOp(op_, l, r);
}

Status ArithExpr::EvalBatch(const Batch& batch,
                            const std::vector<uint32_t>& positions,
                            std::vector<Value>* out) const {
  std::vector<Value> l, r;
  ELE_RETURN_NOT_OK(lhs_->EvalBatch(batch, positions, &l));
  ELE_RETURN_NOT_OK(rhs_->EvalBatch(batch, positions, &r));
  out->resize(batch.num_rows());
  for (uint32_t pos : positions) {
    ELE_ASSIGN_OR_RETURN((*out)[pos], EvalArithOp(op_, l[pos], r[pos]));
  }
  return Status::OK();
}

TypeId ArithExpr::output_type() const {
  if (op_ == ArithOp::kDiv) return TypeId::kDouble;
  const TypeId a = lhs_->output_type();
  const TypeId b = rhs_->output_type();
  if (a == TypeId::kDouble || b == TypeId::kDouble) return TypeId::kDouble;
  if (a == TypeId::kDecimal || b == TypeId::kDecimal) return TypeId::kDecimal;
  if (a == TypeId::kInt64 || b == TypeId::kInt64) return TypeId::kInt64;
  if (a == TypeId::kDate || b == TypeId::kDate) return TypeId::kDate;
  return TypeId::kInt32;
}

Result<Value> NotExpr::Eval(const Row& row) const {
  ELE_ASSIGN_OR_RETURN(Value v, child_->Eval(row));
  if (v.is_null()) return Value::Null(TypeId::kBoolean);
  return Value::Boolean(!v.AsBool());
}

Status NotExpr::EvalBatch(const Batch& batch,
                          const std::vector<uint32_t>& positions,
                          std::vector<Value>* out) const {
  std::vector<Value> c;
  ELE_RETURN_NOT_OK(child_->EvalBatch(batch, positions, &c));
  out->resize(batch.num_rows());
  for (uint32_t pos : positions) {
    (*out)[pos] = c[pos].is_null() ? Value::Null(TypeId::kBoolean)
                                   : Value::Boolean(!c[pos].AsBool());
  }
  return Status::OK();
}

ExprPtr ConjoinAll(std::vector<ExprPtr> preds) {
  ExprPtr out;
  for (ExprPtr& p : preds) {
    if (p == nullptr) continue;
    out = out == nullptr ? std::move(p) : And(std::move(out), std::move(p));
  }
  return out;
}

void SplitConjuncts(ExprPtr pred, std::vector<ExprPtr>* out) {
  if (pred == nullptr) return;
  auto* logical = dynamic_cast<LogicalExpr*>(pred.get());
  if (logical != nullptr && logical->op() == LogicalOp::kAnd) {
    SplitConjuncts(logical->TakeLhs(), out);
    SplitConjuncts(logical->TakeRhs(), out);
    return;
  }
  out->push_back(std::move(pred));
}

Result<bool> EvalPredicate(const Expr& pred, const Row& row) {
  ELE_ASSIGN_OR_RETURN(Value v, pred.Eval(row));
  return !v.is_null() && v.AsBool();
}

Status ApplyFilterToBatch(const Expr& pred, Batch* batch) {
  const std::vector<uint32_t> positions = batch->ActiveIndices();
  std::vector<Value> verdicts;
  ELE_RETURN_NOT_OK(pred.EvalBatch(*batch, positions, &verdicts));
  std::vector<uint32_t> keep;
  keep.reserve(positions.size());
  for (uint32_t pos : positions) {
    if (!verdicts[pos].is_null() && verdicts[pos].AsBool()) keep.push_back(pos);
  }
  batch->SetSelection(std::move(keep));
  return Status::OK();
}

TypeId AggSpec::OutputType() const {
  switch (fn) {
    case AggFunc::kCountStar:
    case AggFunc::kCount:
      return TypeId::kInt64;
    case AggFunc::kSum: {
      const TypeId t = arg->output_type();
      if (t == TypeId::kDouble) return TypeId::kDouble;
      if (t == TypeId::kDecimal) return TypeId::kDecimal;
      return TypeId::kInt64;
    }
    case AggFunc::kMin:
    case AggFunc::kMax:
      return arg->output_type();
    case AggFunc::kAvg:
      return TypeId::kDouble;
  }
  return TypeId::kInvalid;
}

Status AggState::Accumulate(const Value& v) {
  if (fn_ == AggFunc::kCountStar) {
    count_++;
    return Status::OK();
  }
  if (v.is_null()) return Status::OK();
  count_++;
  switch (fn_) {
    case AggFunc::kCount:
      break;
    case AggFunc::kSum:
    case AggFunc::kAvg:
      if (!has_value_) {
        // Widen to the SUM domain so int32 sums don't overflow.
        if (v.type() == TypeId::kInt32) {
          acc_ = Value::Int64(v.AsInt64());
        } else {
          acc_ = v;
        }
      } else {
        ELE_ASSIGN_OR_RETURN(acc_, acc_.Add(v));
      }
      has_value_ = true;
      break;
    case AggFunc::kMin:
      if (!has_value_ || v.Compare(acc_) < 0) acc_ = v;
      has_value_ = true;
      break;
    case AggFunc::kMax:
      if (!has_value_ || v.Compare(acc_) > 0) acc_ = v;
      has_value_ = true;
      break;
    case AggFunc::kCountStar:
      break;
  }
  return Status::OK();
}

namespace {

/// Column type of the sum slot in an AVG partial state: the accumulation
/// domain of the argument (matches AggState::Accumulate's widening).
TypeId AvgSumType(const AggSpec& spec) {
  const TypeId t = spec.arg->output_type();
  if (t == TypeId::kDouble) return TypeId::kDouble;
  if (t == TypeId::kDecimal) return TypeId::kDecimal;
  return TypeId::kInt64;
}

}  // namespace

void AggState::AppendPartialColumns(const AggSpec& spec, std::vector<Column>* cols) {
  const std::string base = !spec.name.empty() ? spec.name : AggFuncName(spec.fn);
  switch (spec.fn) {
    case AggFunc::kCountStar:
    case AggFunc::kCount:
      cols->emplace_back(base + "$count", TypeId::kInt64);
      break;
    case AggFunc::kSum:
      cols->emplace_back(base + "$sum", spec.OutputType());
      break;
    case AggFunc::kMin:
    case AggFunc::kMax:
      cols->emplace_back(base + "$acc", spec.arg->output_type(),
                         spec.arg->output_length());
      break;
    case AggFunc::kAvg:
      cols->emplace_back(base + "$sum", AvgSumType(spec));
      cols->emplace_back(base + "$count", TypeId::kInt64);
      break;
  }
}

void AggState::AppendPartial(Row* out) const {
  switch (fn_) {
    case AggFunc::kCountStar:
    case AggFunc::kCount:
      out->push_back(Value::Int64(count_));
      break;
    case AggFunc::kSum:
    case AggFunc::kMin:
    case AggFunc::kMax:
      out->push_back(has_value_ ? acc_ : Value::Null(acc_.type()));
      break;
    case AggFunc::kAvg:
      out->push_back(has_value_ ? acc_ : Value::Null(acc_.type()));
      out->push_back(Value::Int64(count_));
      break;
  }
}

Status AggState::MergePartial(const Row& row, size_t pos) {
  switch (fn_) {
    case AggFunc::kCountStar:
    case AggFunc::kCount:
      count_ += row[pos].AsInt64();
      break;
    case AggFunc::kSum:
    case AggFunc::kAvg: {
      const Value& v = row[pos];
      if (!v.is_null()) {
        if (!has_value_) {
          acc_ = v;
        } else {
          ELE_ASSIGN_OR_RETURN(acc_, acc_.Add(v));
        }
        has_value_ = true;
      }
      if (fn_ == AggFunc::kAvg) count_ += row[pos + 1].AsInt64();
      break;
    }
    case AggFunc::kMin: {
      const Value& v = row[pos];
      if (!v.is_null() && (!has_value_ || v.Compare(acc_) < 0)) {
        acc_ = v;
        has_value_ = true;
      }
      break;
    }
    case AggFunc::kMax: {
      const Value& v = row[pos];
      if (!v.is_null() && (!has_value_ || v.Compare(acc_) > 0)) {
        acc_ = v;
        has_value_ = true;
      }
      break;
    }
  }
  return Status::OK();
}

Value AggState::Finalize() const {
  switch (fn_) {
    case AggFunc::kCountStar:
    case AggFunc::kCount:
      return Value::Int64(count_);
    case AggFunc::kSum:
    case AggFunc::kMin:
    case AggFunc::kMax:
      return has_value_ ? acc_ : Value::Null(acc_.type());
    case AggFunc::kAvg: {
      if (count_ == 0) return Value::Null(TypeId::kDouble);
      double sum = acc_.type() == TypeId::kDecimal
                       ? static_cast<double>(acc_.AsInt64()) / decimal::kScale
                       : acc_.AsDouble();
      return Value::Double(sum / static_cast<double>(count_));
    }
  }
  return Value();
}

}  // namespace elephant
