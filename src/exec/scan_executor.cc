#include "exec/scan_executor.h"

namespace elephant {

KeyRange MakeKeyRange(const std::vector<Value>& eq_values,
                      const std::optional<Value>& lo, bool lo_inclusive,
                      const std::optional<Value>& hi, bool hi_inclusive) {
  KeyRange range;
  std::string prefix;
  for (const Value& v : eq_values) keycodec::Encode(v, &prefix);
  range.lo = prefix;
  if (lo.has_value()) {
    keycodec::Encode(*lo, &range.lo);
    if (!lo_inclusive) {
      // Exclusive lower bound: skip every key extending this exact value.
      range.lo = keycodec::PrefixUpperBound(range.lo);
    }
  }
  if (hi.has_value()) {
    range.hi = prefix;
    keycodec::Encode(*hi, &range.hi);
    if (hi_inclusive) {
      // Inclusive upper bound: include every key extending this exact value.
      range.hi = keycodec::PrefixUpperBound(range.hi);
    }
  } else if (!prefix.empty()) {
    range.hi = keycodec::PrefixUpperBound(prefix);
  }
  return range;
}

Status ClusteredScanExecutor::Init() {
  ELE_ASSIGN_OR_RETURN(Table::RowIterator it,
                       table_->ScanRange(range_.lo, range_.hi, intent_));
  it_.emplace(std::move(it));
  return Status::OK();
}

Result<bool> ClusteredScanExecutor::Next(Row* out) {
  if (!it_->Valid()) return false;
  ELE_RETURN_NOT_OK(it_->Current(out));
  ELE_RETURN_NOT_OK(it_->Next());
  ctx_->counters().rows_scanned++;
  return true;
}

Status SecondaryIndexScanExecutor::Init() {
  BPlusTree::Iterator it;
  if (range_.lo.empty()) {
    ELE_ASSIGN_OR_RETURN(it, index_->tree->SeekToFirst(intent_));
  } else {
    ELE_ASSIGN_OR_RETURN(it, index_->tree->Seek(range_.lo, intent_));
  }
  it_.emplace(std::move(it));
  return Status::OK();
}

Status DecodeSecondaryIndexRow(const Table& table, const SecondaryIndex& index,
                               std::string_view key, std::string_view value,
                               Row* out) {
  // Decode key columns from the encoded key, then include columns from the
  // serialized payload.
  out->clear();
  std::string key_str(key);
  size_t pos = 0;
  for (size_t c : index.key_cols) {
    ELE_ASSIGN_OR_RETURN(
        Value v, keycodec::Decode(table.schema().ColumnAt(c).type, key_str, &pos));
    out->push_back(std::move(v));
  }
  SecondaryEntry entry = DecodeSecondaryValue(value);
  Row include_row;
  ELE_RETURN_NOT_OK(tuple::Deserialize(index.include_schema, entry.include_bytes.data(),
                                       entry.include_bytes.size(), &include_row));
  for (Value& v : include_row) out->push_back(std::move(v));
  return Status::OK();
}

Result<bool> SecondaryIndexScanExecutor::Next(Row* out) {
  if (!it_->Valid()) return false;
  const std::string_view key = it_->key();
  if (!range_.hi.empty() && std::string_view(key) >= std::string_view(range_.hi)) {
    return false;
  }
  ELE_RETURN_NOT_OK(
      DecodeSecondaryIndexRow(*table_, *index_, key, it_->value(), out));
  ELE_RETURN_NOT_OK(it_->Next());
  ctx_->counters().rows_scanned++;
  return true;
}

}  // namespace elephant
