#include "index/btree.h"

#include <cstring>
#include <deque>
#include <vector>

#include "index/btree_node.h"

namespace elephant {

namespace {

/// Little-endian child pid payload for internal cells.
std::string ChildValue(page_id_t pid) {
  std::string v(4, '\0');
  for (int i = 0; i < 4; i++) v[i] = static_cast<char>((pid >> (8 * i)) & 0xff);
  return v;
}

}  // namespace

Result<BPlusTree> BPlusTree::Create(BufferPool* pool) {
  page_id_t pid;
  ELE_ASSIGN_OR_RETURN(PageGuard guard, pool->NewPageGuarded(&pid));
  BTreeNode node(guard.data());
  node.Init(BTreeNode::kLeaf);
  guard.MarkDirty();
  return BPlusTree(pool, pid);
}

Result<page_id_t> BPlusTree::FindLeaf(
    std::string_view key, std::vector<std::pair<page_id_t, int>>* path) const {
  page_id_t pid = root_;
  while (true) {
    ELE_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPageGuarded(pid));
    BTreeNode node(guard.data());
    if (node.IsLeaf()) return pid;
    int idx = node.LowerBound(key);  // strict <: equal keys route left
    page_id_t child = node.ChildForIndex(idx);
    if (path != nullptr) path->emplace_back(pid, idx);
    pid = child;
  }
}

Status BPlusTree::SplitNode(page_id_t pid, std::string* separator,
                            page_id_t* new_pid, int* split_index) {
  ELE_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPageGuarded(pid));
  BTreeNode node(guard.data());
  const int count = node.Count();
  if (count < 2) {
    return Status::Internal("split of node with <2 cells");
  }
  // Choose split index m so the left half holds ~half of the live bytes.
  const uint32_t half = node.LiveBytes() / 2;
  uint32_t acc = 0;
  int m = 0;
  for (; m < count - 1; m++) {
    acc += BTreeNode::CellBytes(node.KeyAt(m).size(), node.ValueAt(m).size());
    if (acc >= half && m + 1 >= 1) break;
  }
  if (m == 0) m = 1;
  if (m >= count) m = count - 1;

  page_id_t right_pid;
  // On allocation failure, `guard` unpins the left node automatically (the
  // manual error-path cleanup this function used to carry).
  ELE_ASSIGN_OR_RETURN(PageGuard right_guard, pool_->NewPageGuarded(&right_pid));
  BTreeNode right(right_guard.data());

  if (node.IsLeaf()) {
    right.Init(BTreeNode::kLeaf);
    *separator = std::string(node.KeyAt(m));
    for (int i = m; i < count; i++) {
      right.InsertCell(i - m, node.KeyAt(i), node.ValueAt(i));
    }
    right.SetLink(node.Link());
    // Truncate left to [0, m) and reclaim space.
    node.PutU16(1, static_cast<uint16_t>(m));
    node.Compact();
    node.SetLink(right_pid);
  } else {
    right.Init(BTreeNode::kInternal);
    *separator = std::string(node.KeyAt(m));
    right.SetLink(node.ChildCellAt(m));  // separator's child becomes leftmost
    for (int i = m + 1; i < count; i++) {
      right.InsertCell(i - m - 1, node.KeyAt(i), node.ValueAt(i));
    }
    node.PutU16(1, static_cast<uint16_t>(m));
    node.Compact();
  }
  right_guard.MarkDirty();
  guard.MarkDirty();
  *new_pid = right_pid;
  *split_index = m;
  return Status::OK();
}

Status BPlusTree::InsertIntoParent(std::vector<std::pair<page_id_t, int>>& path,
                                   std::string separator, page_id_t new_child) {
  while (true) {
    if (path.empty()) {
      // Root split: create a new internal root.
      page_id_t new_root;
      ELE_ASSIGN_OR_RETURN(PageGuard guard, pool_->NewPageGuarded(&new_root));
      BTreeNode node(guard.data());
      node.Init(BTreeNode::kInternal);
      node.SetLink(root_);
      node.InsertCell(0, separator, ChildValue(new_child));
      guard.MarkDirty();
      root_ = new_root;
      return Status::OK();
    }
    auto [pid, child_idx] = path.back();
    path.pop_back();
    {
      ELE_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPageGuarded(pid));
      BTreeNode node(guard.data());
      const std::string child_value = ChildValue(new_child);
      const uint32_t need =
          BTreeNode::CellBytes(separator.size(), child_value.size());
      if (need <= node.ContiguousFree() || need <= node.TotalFree()) {
        if (need > node.ContiguousFree()) node.Compact();
        node.InsertCell(child_idx, separator, child_value);
        guard.MarkDirty();
        return Status::OK();
      }
    }  // parent overfull: drop the pin before splitting it
    // Split the parent, insert into the proper half by *position*
    // (duplicate-safe), and continue propagating its separator upward.
    std::string parent_sep;
    page_id_t parent_right;
    int m;
    ELE_RETURN_NOT_OK(SplitNode(pid, &parent_sep, &parent_right, &m));
    // Pre-split coordinates: cell position child_idx. Internal split keeps
    // cells [0,m) left, promotes m, moves (m,count) right (right cell i maps
    // to pre-split cell m+1+i).
    page_id_t target = child_idx <= m ? pid : parent_right;
    int idx = child_idx <= m ? child_idx : child_idx - m - 1;
    const std::string child_value = ChildValue(new_child);
    ELE_ASSIGN_OR_RETURN(PageGuard tguard, pool_->FetchPageGuarded(target));
    BTreeNode tnode(tguard.data());
    if (BTreeNode::CellBytes(separator.size(), child_value.size()) >
        tnode.ContiguousFree()) {
      tnode.Compact();
    }
    tnode.InsertCell(idx, separator, child_value);
    tguard.MarkDirty();
    separator = std::move(parent_sep);
    new_child = parent_right;
  }
}

Status BPlusTree::Insert(std::string_view key, std::string_view value) {
  obs::AccessScope access(access_label_);
  if (key.size() + value.size() > kMaxCellPayload) {
    return Status::InvalidArgument("btree entry exceeds max payload");
  }
  std::vector<std::pair<page_id_t, int>> path;
  ELE_ASSIGN_OR_RETURN(page_id_t leaf_pid, FindLeaf(key, &path));
  const uint32_t need = BTreeNode::CellBytes(key.size(), value.size());
  int pos;
  {
    ELE_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPageGuarded(leaf_pid));
    BTreeNode leaf(guard.data());
    pos = leaf.LowerBound(key);
    if (need <= leaf.ContiguousFree()) {
      leaf.InsertCell(pos, key, value);
      guard.MarkDirty();
      return Status::OK();
    }
    if (need <= leaf.TotalFree()) {
      leaf.Compact();
      leaf.InsertCell(pos, key, value);
      guard.MarkDirty();
      return Status::OK();
    }
  }  // leaf overfull: drop the pin before splitting
  // Split, insert into the proper half by pre-split position
  // (duplicate-safe), fix ancestors. Leaf split keeps cells [0,m) left and
  // moves [m,count) right.
  std::string separator;
  page_id_t right_pid;
  int m;
  ELE_RETURN_NOT_OK(SplitNode(leaf_pid, &separator, &right_pid, &m));
  page_id_t target = pos <= m ? leaf_pid : right_pid;
  int idx = pos <= m ? pos : pos - m;
  {
    ELE_ASSIGN_OR_RETURN(PageGuard tguard, pool_->FetchPageGuarded(target));
    BTreeNode tnode(tguard.data());
    if (need > tnode.ContiguousFree()) tnode.Compact();
    tnode.InsertCell(idx, key, value);
    tguard.MarkDirty();
  }
  return InsertIntoParent(path, std::move(separator), right_pid);
}

namespace {

/// Locates the first exact occurrence of `key`: (leaf pid, cell index).
struct ExactPos {
  page_id_t leaf;
  int pos;
};

}  // namespace

static Result<ExactPos> LocateExact(BufferPool* pool, std::string_view key,
                                    page_id_t start_leaf) {
  page_id_t pid = start_leaf;
  while (pid != kInvalidPageId) {
    ELE_ASSIGN_OR_RETURN(PageGuard guard, pool->FetchPageGuarded(pid));
    BTreeNode node(guard.data());
    int pos = node.LowerBound(key);
    if (pos < node.Count()) {
      if (node.KeyAt(pos) == key) return ExactPos{pid, pos};
      return Status::NotFound("key not in btree");
    }
    pid = node.Link();  // duplicates/edge: first >= key may start on next leaf
  }
  return Status::NotFound("key not in btree");
}

Result<std::string> BPlusTree::Get(std::string_view key) const {
  obs::AccessScope access(access_label_);
  ELE_ASSIGN_OR_RETURN(page_id_t leaf_pid, FindLeaf(key, nullptr));
  ELE_ASSIGN_OR_RETURN(ExactPos at, LocateExact(pool_, key, leaf_pid));
  ELE_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPageGuarded(at.leaf));
  BTreeNode node(guard.data());
  return std::string(node.ValueAt(at.pos));
}

Status BPlusTree::Delete(std::string_view key) {
  obs::AccessScope access(access_label_);
  ELE_ASSIGN_OR_RETURN(page_id_t leaf_pid, FindLeaf(key, nullptr));
  ELE_ASSIGN_OR_RETURN(ExactPos at, LocateExact(pool_, key, leaf_pid));
  ELE_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPageGuarded(at.leaf));
  BTreeNode node(guard.data());
  node.RemoveCell(at.pos);
  guard.MarkDirty();
  return Status::OK();
}

Status BPlusTree::Update(std::string_view key, std::string_view value) {
  obs::AccessScope access(access_label_);
  ELE_ASSIGN_OR_RETURN(page_id_t leaf_pid, FindLeaf(key, nullptr));
  ELE_ASSIGN_OR_RETURN(ExactPos at, LocateExact(pool_, key, leaf_pid));
  {
    ELE_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPageGuarded(at.leaf));
    BTreeNode node(guard.data());
    if (node.ValueAt(at.pos).size() == value.size()) {
      node.SetValueInPlace(at.pos, value);
      guard.MarkDirty();
      return Status::OK();
    }
    node.RemoveCell(at.pos);
    guard.MarkDirty();
  }  // drop the pin before re-inserting (Insert may split this leaf)
  return Insert(key, value);
}

Status BPlusTree::Iterator::LoadCell() {
  BTreeNode node(guard_.data());
  if (pos_ < node.Count()) {
    key_ = node.KeyAt(pos_);
    value_ = node.ValueAt(pos_);
    valid_ = true;
    return Status::OK();
  }
  return AdvanceLeaf();
}

Status BPlusTree::Iterator::AdvanceLeaf() {
  while (true) {
    BTreeNode node(guard_.data());
    page_id_t next = node.Link();
    guard_.Release();
    if (next == kInvalidPageId) {
      valid_ = false;
      return Status::OK();
    }
    ELE_ASSIGN_OR_RETURN(guard_, pool_->FetchPageGuarded(next, intent_));
    leaf_ = next;
    pos_ = 0;
    BTreeNode nnode(guard_.data());
    if (nnode.Count() > 0) {
      key_ = nnode.KeyAt(0);
      value_ = nnode.ValueAt(0);
      valid_ = true;
      return Status::OK();
    }
  }
}

Status BPlusTree::Iterator::Next() {
  obs::AccessScope access(access_label_);
  pos_++;
  return LoadCell();
}

Result<BPlusTree::Iterator> BPlusTree::SeekToFirst(AccessIntent intent) const {
  obs::AccessScope access(access_label_);
  // Descend along leftmost children. The descent itself is point I/O even
  // for a scan: inner pages are the hot working set a scan must not evict,
  // so only the leaf-chain walk (AdvanceLeaf) carries the caller's intent.
  page_id_t pid = root_;
  while (true) {
    ELE_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPageGuarded(pid));
    BTreeNode node(guard.data());
    if (node.IsLeaf()) {
      Iterator it;
      it.pool_ = pool_;
      it.access_label_ = access_label_;
      it.intent_ = intent;
      it.guard_ = std::move(guard);
      it.leaf_ = pid;
      it.pos_ = 0;
      ELE_RETURN_NOT_OK(it.LoadCell());
      return it;
    }
    pid = node.Link();
  }
}

Result<BPlusTree::Iterator> BPlusTree::Seek(std::string_view key,
                                            AccessIntent intent) const {
  obs::AccessScope access(access_label_);
  ELE_ASSIGN_OR_RETURN(page_id_t leaf_pid, FindLeaf(key, nullptr));
  ELE_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPageGuarded(leaf_pid));
  Iterator it;
  it.pool_ = pool_;
  it.access_label_ = access_label_;
  it.intent_ = intent;
  it.leaf_ = leaf_pid;
  BTreeNode node(guard.data());
  it.pos_ = node.LowerBound(key);
  it.guard_ = std::move(guard);
  ELE_RETURN_NOT_OK(it.LoadCell());
  return it;
}

Result<BPlusTree> BPlusTree::BulkLoad(BufferPool* pool, const KvStream& stream,
                                      double fill_fraction) {
  const uint32_t budget = static_cast<uint32_t>(
      (kPageSize - BTreeNode::kHeaderBytes) * fill_fraction);

  // Level 0: pack leaves. Collect (first key, pid) per leaf. `cur_guard`
  // holds the pin on the leaf being filled; every early return (oversized
  // payload, allocation failure, link-fixup failure) releases it — the old
  // manual unpins leaked the pin on the two failure paths below it.
  std::vector<std::pair<std::string, page_id_t>> level;
  page_id_t cur_pid = kInvalidPageId;
  page_id_t prev_pid = kInvalidPageId;
  PageGuard cur_guard;
  uint32_t used = 0;
  std::string key, value;
  while (stream(&key, &value)) {
    if (key.size() + value.size() > kMaxCellPayload) {
      return Status::InvalidArgument("btree entry exceeds max payload");
    }
    const uint32_t need = BTreeNode::CellBytes(key.size(), value.size());
    if (!cur_guard.valid() || used + need > budget) {
      if (cur_guard.valid()) {
        cur_guard.MarkDirty();
        cur_guard.Release();
        prev_pid = cur_pid;
      }
      page_id_t pid;
      // Bulk-load pages are written once, front to back: scan-ring residency
      // keeps a large build from flushing the young region.
      ELE_ASSIGN_OR_RETURN(
          PageGuard guard,
          pool->NewPageGuarded(&pid, AccessIntent::kSequentialScan));
      BTreeNode node(guard.data());
      node.Init(BTreeNode::kLeaf);
      guard.MarkDirty();
      if (prev_pid != kInvalidPageId) {
        ELE_ASSIGN_OR_RETURN(
            PageGuard pguard,
            pool->FetchPageGuarded(prev_pid, AccessIntent::kSequentialScan));
        BTreeNode(pguard.data()).SetLink(pid);
        pguard.MarkDirty();
      }
      cur_pid = pid;
      cur_guard = std::move(guard);
      used = 0;
      level.emplace_back(key, pid);
    }
    BTreeNode node(cur_guard.data());
    node.InsertCell(node.Count(), key, value);
    used += need;
  }
  if (cur_guard.valid()) {
    cur_guard.MarkDirty();
    cur_guard.Release();
  } else {
    // Empty input: an empty tree.
    return Create(pool);
  }

  // Upper levels: pack (separator, child) fan-out nodes until one root.
  while (level.size() > 1) {
    std::vector<std::pair<std::string, page_id_t>> next_level;
    size_t i = 0;
    while (i < level.size()) {
      page_id_t pid;
      ELE_ASSIGN_OR_RETURN(
          PageGuard guard,
          pool->NewPageGuarded(&pid, AccessIntent::kSequentialScan));
      BTreeNode node(guard.data());
      node.Init(BTreeNode::kInternal);
      node.SetLink(level[i].second);
      guard.MarkDirty();
      next_level.emplace_back(level[i].first, pid);
      i++;
      uint32_t node_used = 0;
      while (i < level.size()) {
        const uint32_t need = BTreeNode::CellBytes(level[i].first.size(), 4);
        if (node_used + need > budget) break;
        node.InsertCell(node.Count(), level[i].first, ChildValue(level[i].second));
        node_used += need;
        i++;
      }
    }
    level = std::move(next_level);
  }
  return BPlusTree(pool, level[0].second);
}

Result<uint64_t> BPlusTree::CountEntries() const {
  obs::AccessScope access(access_label_);
  uint64_t n = 0;
  ELE_ASSIGN_OR_RETURN(Iterator it, SeekToFirst(AccessIntent::kSequentialScan));
  while (it.Valid()) {
    n++;
    ELE_RETURN_NOT_OK(it.Next());
  }
  return n;
}

Result<uint64_t> BPlusTree::CountPages() const {
  obs::AccessScope access(access_label_);
  uint64_t n = 0;
  std::deque<page_id_t> queue{root_};
  while (!queue.empty()) {
    page_id_t pid = queue.front();
    queue.pop_front();
    n++;
    ELE_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPageGuarded(pid));
    BTreeNode node(guard.data());
    if (!node.IsLeaf()) {
      queue.push_back(node.Link());
      for (int i = 0; i < node.Count(); i++) queue.push_back(node.ChildCellAt(i));
    }
  }
  return n;
}

Result<uint32_t> BPlusTree::Height() const {
  obs::AccessScope access(access_label_);
  uint32_t h = 1;
  page_id_t pid = root_;
  while (true) {
    ELE_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPageGuarded(pid));
    BTreeNode node(guard.data());
    if (node.IsLeaf()) return h;
    h++;
    pid = node.Link();
  }
}

Result<std::vector<std::string>> BPlusTree::PartitionKeys(
    size_t target, std::string_view lo, std::string_view hi) const {
  obs::AccessScope access(access_label_);
  std::vector<std::string> separators;
  if (target < 2) return separators;
  std::vector<page_id_t> level{root_};
  while (true) {
    // Peek at the level's first node: leaf level means no more separators.
    {
      ELE_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPageGuarded(level[0]));
      if (BTreeNode(guard.data()).IsLeaf()) break;
    }
    std::vector<std::string> keys;
    std::vector<page_id_t> next;
    for (page_id_t pid : level) {
      ELE_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchPageGuarded(pid));
      BTreeNode node(guard.data());
      const int count = node.Count();
      for (int i = 0; i <= count; i++) next.push_back(node.ChildForIndex(i));
      for (int i = 0; i < count; i++) keys.emplace_back(node.KeyAt(i));
    }
    separators = std::move(keys);
    level = std::move(next);
    // One level of separators per descent; stop once it is fine enough.
    if (separators.size() + 1 >= target) break;
  }
  // Clip to the open interval (lo, hi); keys are already in ascending order.
  std::vector<std::string> clipped;
  for (std::string& k : separators) {
    const std::string_view kv(k);
    if (!lo.empty() && kv <= lo) continue;
    if (!hi.empty() && kv >= hi) continue;
    if (!clipped.empty() && clipped.back() == k) continue;
    clipped.push_back(std::move(k));
  }
  // Evenly subsample down to at most target - 1 split points.
  if (clipped.size() > target - 1) {
    std::vector<std::string> sampled;
    sampled.reserve(target - 1);
    const size_t n = clipped.size();
    for (size_t j = 1; j < target; j++) {
      sampled.push_back(std::move(clipped[j * n / target]));
    }
    clipped = std::move(sampled);
  }
  return clipped;
}

}  // namespace elephant
