#include "index/btree_node.h"

#include <cstring>
#include <vector>

namespace elephant {

void BTreeNode::Init(Type type) {
  data_[0] = static_cast<char>(type);
  PutU16(1, 0);
  PutU16(3, kPageSize);
  PutI32(5, kInvalidPageId);
}

std::string_view BTreeNode::KeyAt(int i) const {
  return std::string_view(data_ + SlotOff(i), SlotKlen(i));
}

std::string_view BTreeNode::ValueAt(int i) const {
  return std::string_view(data_ + SlotOff(i) + SlotKlen(i), SlotVlen(i));
}

page_id_t BTreeNode::ChildCellAt(int i) const {
  std::string_view v = ValueAt(i);
  uint32_t id = 0;
  for (int b = 0; b < 4; b++) {
    id |= static_cast<uint32_t>(static_cast<unsigned char>(v[b])) << (8 * b);
  }
  return static_cast<page_id_t>(id);
}

namespace {
int CompareKeys(std::string_view a, std::string_view b) {
  int c = std::memcmp(a.data(), b.data(), std::min(a.size(), b.size()));
  if (c != 0) return c;
  if (a.size() == b.size()) return 0;
  return a.size() < b.size() ? -1 : 1;
}
}  // namespace

int BTreeNode::LowerBound(std::string_view key) const {
  int lo = 0, hi = Count();
  while (lo < hi) {
    int mid = (lo + hi) / 2;
    if (CompareKeys(KeyAt(mid), key) < 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

int BTreeNode::UpperBound(std::string_view key) const {
  int lo = 0, hi = Count();
  while (lo < hi) {
    int mid = (lo + hi) / 2;
    if (CompareKeys(KeyAt(mid), key) <= 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

uint32_t BTreeNode::ContiguousFree() const {
  const uint32_t slots_end = kHeaderBytes + Count() * kSlotBytes;
  const uint32_t free_ptr = GetU16(3) == 0 ? kPageSize : GetU16(3);
  return free_ptr > slots_end ? free_ptr - slots_end : 0;
}

uint32_t BTreeNode::LiveBytes() const {
  uint32_t bytes = 0;
  for (int i = 0; i < Count(); i++) {
    bytes += kSlotBytes + SlotKlen(i) + SlotVlen(i);
  }
  return bytes;
}

uint32_t BTreeNode::TotalFree() const {
  return kPageSize - kHeaderBytes - LiveBytes();
}

void BTreeNode::InsertCell(int i, std::string_view key, std::string_view value) {
  const uint16_t count = Count();
  const uint32_t need = static_cast<uint32_t>(key.size() + value.size());
  uint16_t free_ptr = GetU16(3) == 0 ? kPageSize : GetU16(3);
  const uint16_t off = static_cast<uint16_t>(free_ptr - need);
  std::memcpy(data_ + off, key.data(), key.size());
  std::memcpy(data_ + off + key.size(), value.data(), value.size());
  // Shift slot entries [i, count) right by one.
  char* slots = data_ + kHeaderBytes;
  std::memmove(slots + (i + 1) * kSlotBytes, slots + i * kSlotBytes,
               (count - i) * kSlotBytes);
  PutU16(kHeaderBytes + i * kSlotBytes, off);
  PutU16(kHeaderBytes + i * kSlotBytes + 2, static_cast<uint16_t>(key.size()));
  PutU16(kHeaderBytes + i * kSlotBytes + 4, static_cast<uint16_t>(value.size()));
  PutU16(1, count + 1);
  PutU16(3, off);
}

void BTreeNode::RemoveCell(int i) {
  const uint16_t count = Count();
  char* slots = data_ + kHeaderBytes;
  std::memmove(slots + i * kSlotBytes, slots + (i + 1) * kSlotBytes,
               (count - 1 - i) * kSlotBytes);
  PutU16(1, count - 1);
}

void BTreeNode::SetValueInPlace(int i, std::string_view value) {
  std::memcpy(data_ + SlotOff(i) + SlotKlen(i), value.data(), value.size());
}

void BTreeNode::Compact() {
  const uint16_t count = Count();
  std::vector<std::pair<std::string, std::string>> cells;
  cells.reserve(count);
  for (int i = 0; i < count; i++) {
    cells.emplace_back(std::string(KeyAt(i)), std::string(ValueAt(i)));
  }
  uint16_t free_ptr = kPageSize;
  for (int i = 0; i < count; i++) {
    const auto& [k, v] = cells[i];
    free_ptr = static_cast<uint16_t>(free_ptr - k.size() - v.size());
    std::memcpy(data_ + free_ptr, k.data(), k.size());
    std::memcpy(data_ + free_ptr + k.size(), v.data(), v.size());
    PutU16(kHeaderBytes + i * kSlotBytes, free_ptr);
    PutU16(kHeaderBytes + i * kSlotBytes + 2, static_cast<uint16_t>(k.size()));
    PutU16(kHeaderBytes + i * kSlotBytes + 4, static_cast<uint16_t>(v.size()));
  }
  PutU16(3, free_ptr);
}

}  // namespace elephant
