#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/config.h"
#include "common/status.h"

namespace elephant {

/// A view over one page laid out as a B+-tree node.
///
///   [u8 type][u16 count][u16 free_ptr][i32 link]          (9-byte header)
///   [slot 0][slot 1]...     each slot {u16 off, u16 klen, u16 vlen}
///   ...free space...
///   [cell data: key bytes ++ value bytes]                 (grows downward)
///
/// For leaves, `link` is the next-leaf page id; for internal nodes it is the
/// leftmost child. Internal cells store the child page id as a 4-byte value;
/// cell i's child covers keys in [KeyAt(i), KeyAt(i+1)).
class BTreeNode {
 public:
  enum Type : uint8_t { kLeaf = 1, kInternal = 2 };

  static constexpr uint32_t kHeaderBytes = 9;
  static constexpr uint32_t kSlotBytes = 6;

  explicit BTreeNode(char* data) : data_(data) {}

  void Init(Type type);

  bool IsLeaf() const { return static_cast<unsigned char>(data_[0]) == kLeaf; }
  uint16_t Count() const { return GetU16(1); }
  page_id_t Link() const { return GetI32(5); }
  void SetLink(page_id_t id) { PutI32(5, id); }

  std::string_view KeyAt(int i) const;
  std::string_view ValueAt(int i) const;

  /// Child page id stored in cell i (internal nodes only).
  page_id_t ChildCellAt(int i) const;
  /// Child covering descent index i in [0, Count()]: 0 = leftmost link.
  page_id_t ChildForIndex(int i) const { return i == 0 ? Link() : ChildCellAt(i - 1); }

  /// Number of cells with key strictly less than `key` (lower bound).
  int LowerBound(std::string_view key) const;
  /// Number of cells with key <= `key` (upper bound).
  int UpperBound(std::string_view key) const;

  /// Contiguous free bytes between the slot array and the cell data.
  uint32_t ContiguousFree() const;
  /// Free bytes recoverable by compaction (deleted-cell space included).
  uint32_t TotalFree() const;
  /// Bytes a new cell with this payload needs (slot + data).
  static uint32_t CellBytes(size_t klen, size_t vlen) {
    return kSlotBytes + static_cast<uint32_t>(klen + vlen);
  }

  /// Inserts a cell at position i, shifting slots. Caller guarantees space
  /// (ContiguousFree() >= CellBytes); use Compact() first if fragmented.
  void InsertCell(int i, std::string_view key, std::string_view value);

  /// Removes cell i (slot shifted out; data space becomes fragmentation).
  void RemoveCell(int i);

  /// Overwrites cell i's value in place; requires same value length.
  void SetValueInPlace(int i, std::string_view value);

  /// Rewrites all cells to eliminate fragmentation.
  void Compact();

  /// Bytes of cell data + slots currently live (used by split balancing).
  uint32_t LiveBytes() const;

 private:
  friend class BPlusTree;
  uint16_t GetU16(uint32_t off) const {
    return static_cast<uint16_t>(static_cast<unsigned char>(data_[off]) |
                                 (static_cast<unsigned char>(data_[off + 1]) << 8));
  }
  void PutU16(uint32_t off, uint16_t v) {
    data_[off] = static_cast<char>(v & 0xff);
    data_[off + 1] = static_cast<char>((v >> 8) & 0xff);
  }
  int32_t GetI32(uint32_t off) const {
    uint32_t v = 0;
    for (int i = 0; i < 4; i++) {
      v |= static_cast<uint32_t>(static_cast<unsigned char>(data_[off + i])) << (8 * i);
    }
    return static_cast<int32_t>(v);
  }
  void PutI32(uint32_t off, int32_t v) {
    for (int i = 0; i < 4; i++) {
      data_[off + i] = static_cast<char>((v >> (8 * i)) & 0xff);
    }
  }

  uint16_t SlotOff(int i) const { return GetU16(kHeaderBytes + i * kSlotBytes); }
  uint16_t SlotKlen(int i) const { return GetU16(kHeaderBytes + i * kSlotBytes + 2); }
  uint16_t SlotVlen(int i) const { return GetU16(kHeaderBytes + i * kSlotBytes + 4); }

  char* data_;
};

}  // namespace elephant
