#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "common/config.h"
#include "common/status.h"
#include "obs/heatmap.h"
#include "storage/buffer_pool.h"

namespace elephant {

/// A disk-resident B+-tree over opaque byte-string keys and values. Keys are
/// compared with memcmp (callers encode with keycodec so memcmp order equals
/// value order). Duplicate keys are allowed; Seek/Get find the first
/// occurrence in key order.
///
/// Leaves form a singly linked chain for range scans. Bulk loading packs
/// leaves into consecutively allocated pages, so full scans of freshly built
/// indexes are sequential I/O — matching the behaviour of a clustered index
/// in a real row-store.
///
/// Deletions do not rebalance (read-mostly engine); pages may stay underfull.
class BPlusTree {
 public:
  /// Creates an empty tree (root = single empty leaf).
  static Result<BPlusTree> Create(BufferPool* pool);

  /// Opens an existing tree.
  BPlusTree(BufferPool* pool, page_id_t root) : pool_(pool), root_(root) {}

  /// A sorted key/value producer for bulk loading. Returns false at end.
  using KvStream = std::function<bool(std::string* key, std::string* value)>;

  /// Builds a tree from a stream of key-ascending entries (duplicates OK).
  /// `fill_fraction` controls leaf packing (1.0 = fully packed).
  static Result<BPlusTree> BulkLoad(BufferPool* pool, const KvStream& stream,
                                    double fill_fraction = 0.95);

  /// Inserts an entry. key.size()+value.size() must be <= kMaxCellPayload.
  Status Insert(std::string_view key, std::string_view value);

  /// Removes the first entry with exactly this key (NotFound if absent).
  Status Delete(std::string_view key);

  /// Replaces the value of the first entry with exactly this key.
  Status Update(std::string_view key, std::string_view value);

  /// Returns the value of the first entry with exactly this key.
  Result<std::string> Get(std::string_view key) const;

  /// Forward iterator over entries, in key order, across the leaf chain.
  /// Holds one pinned page while valid; destroy or exhaust before EvictAll.
  class Iterator {
   public:
    Iterator() = default;

    bool Valid() const { return valid_; }
    Status Next();
    std::string_view key() const { return key_; }
    std::string_view value() const { return value_; }

   private:
    friend class BPlusTree;
    Status LoadCell();
    Status AdvanceLeaf();

    BufferPool* pool_ = nullptr;
    PageGuard guard_;
    page_id_t leaf_ = kInvalidPageId;
    int pos_ = 0;
    bool valid_ = false;
    std::string_view key_;
    std::string_view value_;
    /// Copied from the owning tree: iterators do lazy I/O (leaf faults
    /// happen inside Next, far from the Seek call), so the attribution
    /// label travels with the iterator.
    const std::string* access_label_ = nullptr;
    /// Like the label, the access intent travels with the iterator: a
    /// range-scan iterator faults each next leaf under kSequentialScan so
    /// the chain walk uses the scan ring and the disk read-ahead window,
    /// while the descent that positioned it stays kPointLookup.
    AccessIntent intent_ = AccessIntent::kPointLookup;
  };

  /// Iterator positioned at the first entry (end iterator if empty).
  /// `intent` applies to the leaf-chain pages the iterator touches (the
  /// descent to the first leaf is always point I/O: inner pages are the hot
  /// working set a scan must not displace).
  Result<Iterator> SeekToFirst(
      AccessIntent intent = AccessIntent::kPointLookup) const;

  /// Iterator positioned at the first entry with key >= `key`. `intent` as
  /// in SeekToFirst.
  Result<Iterator> Seek(std::string_view key,
                        AccessIntent intent = AccessIntent::kPointLookup) const;

  page_id_t root() const { return root_; }

  /// Number of entries (full leaf walk; for tests/stats, not hot paths).
  Result<uint64_t> CountEntries() const;

  /// Number of pages reachable from the root (tree size on disk).
  Result<uint64_t> CountPages() const;

  /// Tree height (1 = root is a leaf).
  Result<uint32_t> Height() const;

  /// Returns up to `target - 1` separator keys that split (lo, hi) into
  /// roughly equal key ranges, for morsel-driven parallel scans. Walks the
  /// internal levels from the root, descending until one level carries at
  /// least `target` separators (or the leaf level is reached), then clips to
  /// the open interval (lo, hi) and subsamples evenly. Empty `lo`/`hi` mean
  /// unbounded. May return fewer separators than requested (small trees or
  /// narrow ranges); returns none when the root is a leaf.
  Result<std::vector<std::string>> PartitionKeys(size_t target,
                                                 std::string_view lo,
                                                 std::string_view hi) const;

  /// Largest key+value payload a single cell may carry.
  static constexpr uint32_t kMaxCellPayload = 1900;

  /// Attaches a heatmap attribution label ("table:lineitem",
  /// "index:orders.o_custkey") to this tree: every public operation — and
  /// every iterator obtained from it — installs the label as an AccessScope,
  /// so page traffic lands on the owning object in the heatmap even when
  /// iterators fault pages long after the Seek that created them. `label`
  /// must outlive the tree (the catalog owns it); nullptr (the default)
  /// leaves the caller's scope in effect.
  void SetAccessLabel(const std::string* label) { access_label_ = label; }
  const std::string* access_label() const { return access_label_; }

 private:
  /// Descends to the leaf that should contain `key` (lower-bound routing),
  /// recording the path of (page id, child index) pairs when `path` != null.
  Result<page_id_t> FindLeaf(std::string_view key,
                             std::vector<std::pair<page_id_t, int>>* path) const;

  /// Splits the given overfull node; returns the separator key, the new
  /// (right) page and the split index `m` in pre-split cell coordinates
  /// (leaves keep cells [0,m) left / [m,count) right; internal nodes keep
  /// [0,m) left, promote cell m, and move (m,count) right). The caller
  /// inserts the separator into the parent. Positional routing (rather than
  /// key comparison) keeps duplicate keys correctly ordered.
  Status SplitNode(page_id_t pid, std::string* separator, page_id_t* new_pid,
                   int* split_index);

  /// Inserts (separator,new_child) into the parent chain after a child split.
  Status InsertIntoParent(std::vector<std::pair<page_id_t, int>>& path,
                          std::string separator, page_id_t new_child);

  BufferPool* pool_ = nullptr;
  page_id_t root_ = kInvalidPageId;
  const std::string* access_label_ = nullptr;  ///< owned by the catalog
};

}  // namespace elephant
