#pragma once

#include <string>
#include <vector>

#include "common/status.h"

namespace elephant {

enum class TokenKind {
  kEnd,
  kIdent,      ///< bare identifier (keywords are classified by the parser)
  kNumber,     ///< integer or decimal literal text
  kString,     ///< 'quoted' string (quotes stripped, '' unescaped)
  kSymbol,     ///< punctuation: ( ) , . * + - / = < > <= >= <>
  kHintBlock,  ///< contents of a leading /*+ ... */ optimizer-hint comment
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;   ///< identifier (upper-cased), symbol, or literal text
  std::string raw;    ///< original spelling (for error messages / strings)
  size_t offset = 0;  ///< byte offset in the input (for diagnostics)
};

/// Splits SQL text into tokens. Identifiers are upper-cased in `text` (SQL is
/// case-insensitive) but preserved in `raw`. Comments (`-- ...` and
/// `/* ... */`) are skipped, except optimizer hints `/*+ ... */` which are
/// surfaced as kHintBlock tokens.
Result<std::vector<Token>> Lex(const std::string& sql);

}  // namespace elephant
