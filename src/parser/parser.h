#pragma once

#include <memory>
#include <string>

#include "common/status.h"
#include "parser/ast.h"

namespace elephant {

/// Parses one SQL statement (SELECT / CREATE TABLE / CREATE INDEX / INSERT).
/// The supported subset covers everything the paper's workload and its
/// c-table rewrites need: multi-table FROM with derived tables, WHERE with
/// AND/OR/BETWEEN, GROUP BY, aggregate functions, ORDER BY, LIMIT, and a
/// leading /*+ ... */ hint block.
Result<Statement> ParseStatement(const std::string& sql);

/// Convenience: parses a statement that must be a SELECT.
Result<std::unique_ptr<SelectStmt>> ParseSelect(const std::string& sql);

/// Collects every base-table name referenced by the SELECT's FROM lists
/// (recursing into derived tables), in first-appearance order. The engine
/// uses this before binding to lock the statement's tables and refresh
/// stale derived tables.
void CollectTableNames(const SelectStmt& stmt, std::vector<std::string>* out);

}  // namespace elephant
