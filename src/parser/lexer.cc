#include "parser/lexer.h"

#include <cctype>

namespace elephant {

Result<std::vector<Token>> Lex(const std::string& sql) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = sql.size();
  while (i < n) {
    const char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      i++;
      continue;
    }
    // Comments.
    if (c == '-' && i + 1 < n && sql[i + 1] == '-') {
      while (i < n && sql[i] != '\n') i++;
      continue;
    }
    if (c == '/' && i + 1 < n && sql[i + 1] == '*') {
      const bool is_hint = i + 2 < n && sql[i + 2] == '+';
      size_t start = i + (is_hint ? 3 : 2);
      size_t end = sql.find("*/", start);
      if (end == std::string::npos) {
        return Status::ParseError("unterminated comment at offset " +
                                  std::to_string(i));
      }
      if (is_hint) {
        Token t;
        t.kind = TokenKind::kHintBlock;
        t.text = sql.substr(start, end - start);
        t.offset = i;
        tokens.push_back(std::move(t));
      }
      i = end + 2;
      continue;
    }
    Token t;
    t.offset = i;
    // String literal.
    if (c == '\'') {
      i++;
      std::string s;
      bool closed = false;
      while (i < n) {
        if (sql[i] == '\'') {
          if (i + 1 < n && sql[i + 1] == '\'') {  // escaped quote
            s.push_back('\'');
            i += 2;
            continue;
          }
          closed = true;
          i++;
          break;
        }
        s.push_back(sql[i++]);
      }
      if (!closed) {
        return Status::ParseError("unterminated string literal at offset " +
                                  std::to_string(t.offset));
      }
      t.kind = TokenKind::kString;
      t.text = s;
      t.raw = s;
      tokens.push_back(std::move(t));
      continue;
    }
    // Number literal (digits, optional fraction).
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = i;
      while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) i++;
      if (i < n && sql[i] == '.' && i + 1 < n &&
          std::isdigit(static_cast<unsigned char>(sql[i + 1]))) {
        i++;
        while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) i++;
      }
      t.kind = TokenKind::kNumber;
      t.text = sql.substr(start, i - start);
      t.raw = t.text;
      tokens.push_back(std::move(t));
      continue;
    }
    // Identifier / keyword.
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < n && (std::isalnum(static_cast<unsigned char>(sql[i])) ||
                       sql[i] == '_')) {
        i++;
      }
      t.kind = TokenKind::kIdent;
      t.raw = sql.substr(start, i - start);
      t.text = t.raw;
      for (char& ch : t.text) {
        ch = static_cast<char>(std::toupper(static_cast<unsigned char>(ch)));
      }
      tokens.push_back(std::move(t));
      continue;
    }
    // Multi-char symbols.
    if (c == '<' && i + 1 < n && (sql[i + 1] == '=' || sql[i + 1] == '>')) {
      t.kind = TokenKind::kSymbol;
      t.text = sql.substr(i, 2);
      i += 2;
      tokens.push_back(std::move(t));
      continue;
    }
    if (c == '>' && i + 1 < n && sql[i + 1] == '=') {
      t.kind = TokenKind::kSymbol;
      t.text = ">=";
      i += 2;
      tokens.push_back(std::move(t));
      continue;
    }
    if (std::string("(),.*+-/=<>;").find(c) != std::string::npos) {
      t.kind = TokenKind::kSymbol;
      t.text = std::string(1, c);
      i++;
      tokens.push_back(std::move(t));
      continue;
    }
    return Status::ParseError(std::string("unexpected character '") + c +
                              "' at offset " + std::to_string(i));
  }
  Token end;
  end.kind = TokenKind::kEnd;
  end.offset = n;
  tokens.push_back(std::move(end));
  return tokens;
}

}  // namespace elephant
