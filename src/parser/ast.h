#pragma once

#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/types.h"
#include "common/value.h"

namespace elephant {

// Abstract syntax trees produced by the parser. These are unresolved: names
// are strings, types are unknown; the binder turns them into bound
// expressions and plans.

struct SqlExpr;
using SqlExprPtr = std::unique_ptr<SqlExpr>;

enum class SqlExprKind {
  kIdent,     ///< column reference, optionally qualified
  kLiteral,   ///< constant
  kStar,      ///< '*' (only valid inside COUNT(*) / SELECT *)
  kBinary,    ///< binary operator (comparison, arithmetic, AND/OR)
  kNot,       ///< NOT child
  kIsNull,    ///< child IS [NOT] NULL
  kFuncCall,  ///< aggregate function call
  kBetween,   ///< child BETWEEN lo AND hi
};

struct SqlExpr {
  SqlExprKind kind;

  // kIdent
  std::string qualifier;  ///< table alias, may be empty
  std::string name;       ///< column name (upper-cased)

  // kLiteral
  Value literal;

  // kBinary: op is one of = <> < <= > >= + - * / AND OR
  std::string op;
  SqlExprPtr lhs, rhs;

  // kNot / kIsNull / kBetween / kFuncCall argument
  SqlExprPtr child;
  bool is_not = false;  ///< for IS NOT NULL

  // kFuncCall
  std::string func;      ///< COUNT/SUM/MIN/MAX/AVG (upper-cased)
  bool star_arg = false; ///< COUNT(*)

  // kBetween
  SqlExprPtr between_lo, between_hi;

  /// Human-readable rendering (used in error messages and as default
  /// output-column names).
  std::string ToString() const;
};

struct SelectStmt;

/// An entry in the FROM list: either a base table or a derived table
/// (parenthesized subquery) with an alias.
struct TableRef {
  std::string table_name;  ///< empty for derived tables
  std::string alias;       ///< defaults to table_name
  std::unique_ptr<SelectStmt> derived;
};

struct SelectItem {
  SqlExprPtr expr;   ///< null for bare '*'
  std::string alias;
  bool star = false;
};

struct OrderItem {
  SqlExprPtr expr;
  bool ascending = true;
};

struct SelectStmt {
  bool distinct = false;
  std::vector<SelectItem> items;
  std::vector<TableRef> from;
  SqlExprPtr where;
  std::vector<SqlExprPtr> group_by;
  SqlExprPtr having;
  std::vector<OrderItem> order_by;
  std::optional<uint64_t> limit;
  std::string hint_text;  ///< raw contents of a leading /*+ ... */ block
};

struct ColumnDef {
  std::string name;
  TypeId type;
  uint32_t length = 0;  ///< CHAR(n)
};

struct CreateTableStmt {
  std::string name;
  std::vector<ColumnDef> columns;
  std::vector<std::string> cluster_by;  ///< column names; may be empty
};

struct CreateIndexStmt {
  std::string index_name;
  std::string table_name;
  std::vector<std::string> key_columns;
  std::vector<std::string> include_columns;
};

struct InsertStmt {
  std::string table_name;
  std::vector<std::vector<SqlExprPtr>> rows;  ///< literal expressions only
};

struct DeleteStmt {
  std::string table_name;
  SqlExprPtr where;  ///< null deletes every row
};

struct UpdateStmt {
  std::string table_name;
  /// SET assignments in statement order: column name -> value expression.
  std::vector<std::pair<std::string, SqlExprPtr>> sets;
  SqlExprPtr where;  ///< null updates every row
};

enum class StatementKind {
  kSelect,
  kCreateTable,
  kCreateIndex,
  kInsert,
  kDelete,
  kUpdate,
  kBegin,
  kCommit,
  kRollback,
  kCheckpoint,
  kExplain,
};

struct Statement {
  StatementKind kind;
  std::unique_ptr<SelectStmt> select;  ///< also the target of kExplain
  std::unique_ptr<CreateTableStmt> create_table;
  std::unique_ptr<CreateIndexStmt> create_index;
  std::unique_ptr<InsertStmt> insert;
  std::unique_ptr<DeleteStmt> delete_stmt;
  std::unique_ptr<UpdateStmt> update_stmt;
  bool explain_analyze = false;  ///< kExplain: EXPLAIN ANALYZE (run the query)
};

}  // namespace elephant
