#include "parser/parser.h"

#include <cstdlib>

#include "parser/lexer.h"

namespace elephant {

std::string SqlExpr::ToString() const {
  switch (kind) {
    case SqlExprKind::kIdent:
      return qualifier.empty() ? name : qualifier + "." + name;
    case SqlExprKind::kLiteral:
      return literal.ToString();
    case SqlExprKind::kStar:
      return "*";
    case SqlExprKind::kBinary:
      return "(" + lhs->ToString() + " " + op + " " + rhs->ToString() + ")";
    case SqlExprKind::kNot:
      return "NOT " + child->ToString();
    case SqlExprKind::kIsNull:
      return child->ToString() + (is_not ? " IS NOT NULL" : " IS NULL");
    case SqlExprKind::kFuncCall:
      return func + "(" + (star_arg ? "*" : child->ToString()) + ")";
    case SqlExprKind::kBetween:
      return child->ToString() + " BETWEEN " + between_lo->ToString() + " AND " +
             between_hi->ToString();
  }
  return "?";
}

namespace {

bool IsAggName(const std::string& s) {
  return s == "COUNT" || s == "SUM" || s == "MIN" || s == "MAX" || s == "AVG";
}

/// Recursive-descent parser over the token stream.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Statement> ParseStatement();
  Result<std::unique_ptr<SelectStmt>> ParseSelectStmt();

 private:
  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Advance() { return tokens_[pos_ < tokens_.size() - 1 ? pos_++ : pos_]; }
  bool AtEnd() const { return Peek().kind == TokenKind::kEnd; }

  bool MatchKeyword(const std::string& kw) {
    if (Peek().kind == TokenKind::kIdent && Peek().text == kw) {
      Advance();
      return true;
    }
    return false;
  }
  bool CheckKeyword(const std::string& kw) const {
    return Peek().kind == TokenKind::kIdent && Peek().text == kw;
  }
  bool MatchSymbol(const std::string& sym) {
    if (Peek().kind == TokenKind::kSymbol && Peek().text == sym) {
      Advance();
      return true;
    }
    return false;
  }
  bool CheckSymbol(const std::string& sym) const {
    return Peek().kind == TokenKind::kSymbol && Peek().text == sym;
  }
  Status ExpectSymbol(const std::string& sym) {
    if (!MatchSymbol(sym)) {
      return Status::ParseError("expected '" + sym + "' near offset " +
                                std::to_string(Peek().offset));
    }
    return Status::OK();
  }
  Status ExpectKeyword(const std::string& kw) {
    if (!MatchKeyword(kw)) {
      return Status::ParseError("expected " + kw + " near offset " +
                                std::to_string(Peek().offset));
    }
    return Status::OK();
  }
  Result<std::string> ExpectIdent() {
    if (Peek().kind != TokenKind::kIdent) {
      return Status::ParseError("expected identifier near offset " +
                                std::to_string(Peek().offset));
    }
    return Advance().text;
  }

  Result<SqlExprPtr> ParseExpr() { return ParseOr(); }
  Result<SqlExprPtr> ParseOr();
  Result<SqlExprPtr> ParseAnd();
  Result<SqlExprPtr> ParseNot();
  Result<SqlExprPtr> ParseComparison();
  Result<SqlExprPtr> ParseAdditive();
  Result<SqlExprPtr> ParseMultiplicative();
  Result<SqlExprPtr> ParsePrimary();
  Result<Value> ParseNumberLiteral(const std::string& text);

  Result<TableRef> ParseTableRef();
  Result<CreateTableStmt> ParseCreateTable();
  Result<CreateIndexStmt> ParseCreateIndex();
  Result<InsertStmt> ParseInsert();
  Result<DeleteStmt> ParseDelete();
  Result<UpdateStmt> ParseUpdate();
  Result<std::vector<std::string>> ParseNameList();

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

SqlExprPtr MakeBinary(std::string op, SqlExprPtr l, SqlExprPtr r) {
  auto e = std::make_unique<SqlExpr>();
  e->kind = SqlExprKind::kBinary;
  e->op = std::move(op);
  e->lhs = std::move(l);
  e->rhs = std::move(r);
  return e;
}

Result<SqlExprPtr> Parser::ParseOr() {
  ELE_ASSIGN_OR_RETURN(SqlExprPtr lhs, ParseAnd());
  while (MatchKeyword("OR")) {
    ELE_ASSIGN_OR_RETURN(SqlExprPtr rhs, ParseAnd());
    lhs = MakeBinary("OR", std::move(lhs), std::move(rhs));
  }
  return lhs;
}

Result<SqlExprPtr> Parser::ParseAnd() {
  ELE_ASSIGN_OR_RETURN(SqlExprPtr lhs, ParseNot());
  while (MatchKeyword("AND")) {
    ELE_ASSIGN_OR_RETURN(SqlExprPtr rhs, ParseNot());
    lhs = MakeBinary("AND", std::move(lhs), std::move(rhs));
  }
  return lhs;
}

Result<SqlExprPtr> Parser::ParseNot() {
  if (MatchKeyword("NOT")) {
    ELE_ASSIGN_OR_RETURN(SqlExprPtr child, ParseNot());
    auto e = std::make_unique<SqlExpr>();
    e->kind = SqlExprKind::kNot;
    e->child = std::move(child);
    return e;
  }
  return ParseComparison();
}

Result<SqlExprPtr> Parser::ParseComparison() {
  ELE_ASSIGN_OR_RETURN(SqlExprPtr lhs, ParseAdditive());
  if (Peek().kind == TokenKind::kSymbol) {
    const std::string& sym = Peek().text;
    if (sym == "=" || sym == "<>" || sym == "<" || sym == "<=" || sym == ">" ||
        sym == ">=") {
      std::string op = Advance().text;
      ELE_ASSIGN_OR_RETURN(SqlExprPtr rhs, ParseAdditive());
      return MakeBinary(std::move(op), std::move(lhs), std::move(rhs));
    }
  }
  if (CheckKeyword("BETWEEN")) {
    Advance();
    ELE_ASSIGN_OR_RETURN(SqlExprPtr lo, ParseAdditive());
    ELE_RETURN_NOT_OK(ExpectKeyword("AND"));
    ELE_ASSIGN_OR_RETURN(SqlExprPtr hi, ParseAdditive());
    auto e = std::make_unique<SqlExpr>();
    e->kind = SqlExprKind::kBetween;
    e->child = std::move(lhs);
    e->between_lo = std::move(lo);
    e->between_hi = std::move(hi);
    return e;
  }
  if (CheckKeyword("IS")) {
    Advance();
    bool is_not = MatchKeyword("NOT");
    ELE_RETURN_NOT_OK(ExpectKeyword("NULL"));
    auto e = std::make_unique<SqlExpr>();
    e->kind = SqlExprKind::kIsNull;
    e->child = std::move(lhs);
    e->is_not = is_not;
    return e;
  }
  return lhs;
}

Result<SqlExprPtr> Parser::ParseAdditive() {
  ELE_ASSIGN_OR_RETURN(SqlExprPtr lhs, ParseMultiplicative());
  while (CheckSymbol("+") || CheckSymbol("-")) {
    std::string op = Advance().text;
    ELE_ASSIGN_OR_RETURN(SqlExprPtr rhs, ParseMultiplicative());
    lhs = MakeBinary(std::move(op), std::move(lhs), std::move(rhs));
  }
  return lhs;
}

Result<SqlExprPtr> Parser::ParseMultiplicative() {
  ELE_ASSIGN_OR_RETURN(SqlExprPtr lhs, ParsePrimary());
  while (CheckSymbol("*") || CheckSymbol("/")) {
    std::string op = Advance().text;
    ELE_ASSIGN_OR_RETURN(SqlExprPtr rhs, ParsePrimary());
    lhs = MakeBinary(std::move(op), std::move(lhs), std::move(rhs));
  }
  return lhs;
}

Result<Value> Parser::ParseNumberLiteral(const std::string& text) {
  if (text.find('.') != std::string::npos) {
    ELE_ASSIGN_OR_RETURN(int64_t scaled, decimal::Parse(text));
    return Value::Decimal(scaled);
  }
  errno = 0;
  const long long v = std::strtoll(text.c_str(), nullptr, 10);
  if (errno != 0) return Status::ParseError("integer literal overflow: " + text);
  if (v >= INT32_MIN && v <= INT32_MAX) return Value::Int32(static_cast<int32_t>(v));
  return Value::Int64(v);
}

Result<SqlExprPtr> Parser::ParsePrimary() {
  const Token& tok = Peek();
  if (tok.kind == TokenKind::kNumber) {
    Advance();
    auto e = std::make_unique<SqlExpr>();
    e->kind = SqlExprKind::kLiteral;
    ELE_ASSIGN_OR_RETURN(e->literal, ParseNumberLiteral(tok.text));
    return e;
  }
  if (tok.kind == TokenKind::kString) {
    Advance();
    auto e = std::make_unique<SqlExpr>();
    e->kind = SqlExprKind::kLiteral;
    e->literal = Value::Varchar(tok.raw);
    return e;
  }
  if (tok.kind == TokenKind::kSymbol && tok.text == "(") {
    Advance();
    ELE_ASSIGN_OR_RETURN(SqlExprPtr inner, ParseExpr());
    ELE_RETURN_NOT_OK(ExpectSymbol(")"));
    return inner;
  }
  if (tok.kind == TokenKind::kSymbol && tok.text == "-") {
    // Unary minus: 0 - primary.
    Advance();
    ELE_ASSIGN_OR_RETURN(SqlExprPtr operand, ParsePrimary());
    auto zero = std::make_unique<SqlExpr>();
    zero->kind = SqlExprKind::kLiteral;
    zero->literal = Value::Int32(0);
    return MakeBinary("-", std::move(zero), std::move(operand));
  }
  if (tok.kind == TokenKind::kIdent) {
    // DATE 'yyyy-mm-dd' literal.
    if (tok.text == "DATE" && Peek(1).kind == TokenKind::kString) {
      Advance();
      const Token& str = Advance();
      ELE_ASSIGN_OR_RETURN(int32_t days, date::Parse(str.raw));
      auto e = std::make_unique<SqlExpr>();
      e->kind = SqlExprKind::kLiteral;
      e->literal = Value::Date(days);
      return e;
    }
    if (tok.text == "NULL") {
      Advance();
      auto e = std::make_unique<SqlExpr>();
      e->kind = SqlExprKind::kLiteral;
      e->literal = Value();
      return e;
    }
    // Aggregate function call.
    if (IsAggName(tok.text) && Peek(1).kind == TokenKind::kSymbol &&
        Peek(1).text == "(") {
      std::string func = Advance().text;
      Advance();  // '('
      auto e = std::make_unique<SqlExpr>();
      e->kind = SqlExprKind::kFuncCall;
      e->func = func;
      if (CheckSymbol("*")) {
        Advance();
        e->star_arg = true;
      } else {
        ELE_ASSIGN_OR_RETURN(e->child, ParseExpr());
      }
      ELE_RETURN_NOT_OK(ExpectSymbol(")"));
      return e;
    }
    // Qualified or bare identifier.
    Advance();
    auto e = std::make_unique<SqlExpr>();
    e->kind = SqlExprKind::kIdent;
    if (CheckSymbol(".")) {
      Advance();
      ELE_ASSIGN_OR_RETURN(std::string col, ExpectIdent());
      e->qualifier = tok.text;
      e->name = col;
    } else {
      e->name = tok.text;
    }
    return e;
  }
  return Status::ParseError("unexpected token near offset " +
                            std::to_string(tok.offset));
}

Result<TableRef> Parser::ParseTableRef() {
  TableRef ref;
  if (MatchSymbol("(")) {
    ELE_ASSIGN_OR_RETURN(ref.derived, ParseSelectStmt());
    ELE_RETURN_NOT_OK(ExpectSymbol(")"));
    MatchKeyword("AS");
    ELE_ASSIGN_OR_RETURN(ref.alias, ExpectIdent());
    return ref;
  }
  ELE_ASSIGN_OR_RETURN(ref.table_name, ExpectIdent());
  ref.alias = ref.table_name;
  if (MatchKeyword("AS")) {
    ELE_ASSIGN_OR_RETURN(ref.alias, ExpectIdent());
  } else if (Peek().kind == TokenKind::kIdent && !CheckKeyword("WHERE") &&
             !CheckKeyword("GROUP") && !CheckKeyword("ORDER") &&
             !CheckKeyword("LIMIT") && !CheckKeyword("ON") &&
             !CheckKeyword("INNER") && !CheckKeyword("JOIN") &&
             !CheckKeyword("HAVING")) {
    ELE_ASSIGN_OR_RETURN(ref.alias, ExpectIdent());
  }
  return ref;
}

Result<std::unique_ptr<SelectStmt>> Parser::ParseSelectStmt() {
  auto stmt = std::make_unique<SelectStmt>();
  if (Peek().kind == TokenKind::kHintBlock) {
    stmt->hint_text = Advance().text;
  }
  ELE_RETURN_NOT_OK(ExpectKeyword("SELECT"));
  if (MatchKeyword("DISTINCT")) stmt->distinct = true;
  // Select list.
  do {
    SelectItem item;
    if (CheckSymbol("*")) {
      Advance();
      item.star = true;
    } else {
      ELE_ASSIGN_OR_RETURN(item.expr, ParseExpr());
      if (MatchKeyword("AS")) {
        ELE_ASSIGN_OR_RETURN(item.alias, ExpectIdent());
      } else if (Peek().kind == TokenKind::kIdent && !CheckKeyword("FROM")) {
        ELE_ASSIGN_OR_RETURN(item.alias, ExpectIdent());
      }
    }
    stmt->items.push_back(std::move(item));
  } while (MatchSymbol(","));

  ELE_RETURN_NOT_OK(ExpectKeyword("FROM"));
  do {
    ELE_ASSIGN_OR_RETURN(TableRef ref, ParseTableRef());
    stmt->from.push_back(std::move(ref));
    // Explicit INNER JOIN ... ON ... sugar: fold the ON condition into WHERE.
    while (CheckKeyword("INNER") || CheckKeyword("JOIN")) {
      MatchKeyword("INNER");
      ELE_RETURN_NOT_OK(ExpectKeyword("JOIN"));
      ELE_ASSIGN_OR_RETURN(TableRef jref, ParseTableRef());
      stmt->from.push_back(std::move(jref));
      ELE_RETURN_NOT_OK(ExpectKeyword("ON"));
      ELE_ASSIGN_OR_RETURN(SqlExprPtr cond, ParseExpr());
      stmt->where = stmt->where == nullptr
                        ? std::move(cond)
                        : MakeBinary("AND", std::move(stmt->where), std::move(cond));
    }
  } while (MatchSymbol(","));

  if (MatchKeyword("WHERE")) {
    ELE_ASSIGN_OR_RETURN(SqlExprPtr w, ParseExpr());
    stmt->where = stmt->where == nullptr
                      ? std::move(w)
                      : MakeBinary("AND", std::move(stmt->where), std::move(w));
  }
  if (MatchKeyword("GROUP")) {
    ELE_RETURN_NOT_OK(ExpectKeyword("BY"));
    do {
      ELE_ASSIGN_OR_RETURN(SqlExprPtr g, ParseExpr());
      stmt->group_by.push_back(std::move(g));
    } while (MatchSymbol(","));
  }
  if (MatchKeyword("HAVING")) {
    ELE_ASSIGN_OR_RETURN(stmt->having, ParseExpr());
  }
  if (MatchKeyword("ORDER")) {
    ELE_RETURN_NOT_OK(ExpectKeyword("BY"));
    do {
      OrderItem item;
      ELE_ASSIGN_OR_RETURN(item.expr, ParseExpr());
      if (MatchKeyword("DESC")) {
        item.ascending = false;
      } else {
        MatchKeyword("ASC");
      }
      stmt->order_by.push_back(std::move(item));
    } while (MatchSymbol(","));
  }
  if (MatchKeyword("LIMIT")) {
    if (Peek().kind != TokenKind::kNumber) {
      return Status::ParseError("expected number after LIMIT");
    }
    stmt->limit = std::strtoull(Advance().text.c_str(), nullptr, 10);
  }
  return stmt;
}

Result<CreateTableStmt> Parser::ParseCreateTable() {
  CreateTableStmt stmt;
  ELE_ASSIGN_OR_RETURN(stmt.name, ExpectIdent());
  ELE_RETURN_NOT_OK(ExpectSymbol("("));
  do {
    ColumnDef col;
    ELE_ASSIGN_OR_RETURN(col.name, ExpectIdent());
    ELE_ASSIGN_OR_RETURN(std::string type, ExpectIdent());
    if (type == "INT" || type == "INTEGER" || type == "INT32") {
      col.type = TypeId::kInt32;
    } else if (type == "BIGINT" || type == "INT64") {
      col.type = TypeId::kInt64;
    } else if (type == "DATE") {
      col.type = TypeId::kDate;
    } else if (type == "DECIMAL" || type == "NUMERIC" || type == "MONEY") {
      col.type = TypeId::kDecimal;
      if (MatchSymbol("(")) {  // DECIMAL(p,s) accepted, scale fixed at 2
        while (!CheckSymbol(")") && !AtEnd()) Advance();
        ELE_RETURN_NOT_OK(ExpectSymbol(")"));
      }
    } else if (type == "DOUBLE" || type == "FLOAT" || type == "REAL") {
      col.type = TypeId::kDouble;
    } else if (type == "CHAR") {
      col.type = TypeId::kChar;
      col.length = 1;
      if (MatchSymbol("(")) {
        if (Peek().kind != TokenKind::kNumber) {
          return Status::ParseError("expected CHAR length");
        }
        col.length = static_cast<uint32_t>(std::strtoul(Advance().text.c_str(),
                                                        nullptr, 10));
        ELE_RETURN_NOT_OK(ExpectSymbol(")"));
      }
    } else if (type == "VARCHAR" || type == "TEXT") {
      col.type = TypeId::kVarchar;
      if (MatchSymbol("(")) {  // length accepted but not enforced
        while (!CheckSymbol(")") && !AtEnd()) Advance();
        ELE_RETURN_NOT_OK(ExpectSymbol(")"));
      }
    } else {
      return Status::ParseError("unknown type " + type);
    }
    stmt.columns.push_back(std::move(col));
  } while (MatchSymbol(","));
  ELE_RETURN_NOT_OK(ExpectSymbol(")"));
  if (MatchKeyword("CLUSTER")) {
    ELE_RETURN_NOT_OK(ExpectKeyword("BY"));
    ELE_RETURN_NOT_OK(ExpectSymbol("("));
    ELE_ASSIGN_OR_RETURN(stmt.cluster_by, ParseNameList());
    ELE_RETURN_NOT_OK(ExpectSymbol(")"));
  }
  return stmt;
}

Result<std::vector<std::string>> Parser::ParseNameList() {
  std::vector<std::string> names;
  do {
    ELE_ASSIGN_OR_RETURN(std::string n, ExpectIdent());
    names.push_back(std::move(n));
  } while (MatchSymbol(","));
  return names;
}

Result<CreateIndexStmt> Parser::ParseCreateIndex() {
  CreateIndexStmt stmt;
  ELE_ASSIGN_OR_RETURN(stmt.index_name, ExpectIdent());
  ELE_RETURN_NOT_OK(ExpectKeyword("ON"));
  ELE_ASSIGN_OR_RETURN(stmt.table_name, ExpectIdent());
  ELE_RETURN_NOT_OK(ExpectSymbol("("));
  ELE_ASSIGN_OR_RETURN(stmt.key_columns, ParseNameList());
  ELE_RETURN_NOT_OK(ExpectSymbol(")"));
  if (MatchKeyword("INCLUDE")) {
    ELE_RETURN_NOT_OK(ExpectSymbol("("));
    ELE_ASSIGN_OR_RETURN(stmt.include_columns, ParseNameList());
    ELE_RETURN_NOT_OK(ExpectSymbol(")"));
  }
  return stmt;
}

Result<InsertStmt> Parser::ParseInsert() {
  InsertStmt stmt;
  ELE_RETURN_NOT_OK(ExpectKeyword("INTO"));
  ELE_ASSIGN_OR_RETURN(stmt.table_name, ExpectIdent());
  ELE_RETURN_NOT_OK(ExpectKeyword("VALUES"));
  do {
    ELE_RETURN_NOT_OK(ExpectSymbol("("));
    std::vector<SqlExprPtr> row;
    do {
      ELE_ASSIGN_OR_RETURN(SqlExprPtr e, ParseExpr());
      row.push_back(std::move(e));
    } while (MatchSymbol(","));
    ELE_RETURN_NOT_OK(ExpectSymbol(")"));
    stmt.rows.push_back(std::move(row));
  } while (MatchSymbol(","));
  return stmt;
}

Result<DeleteStmt> Parser::ParseDelete() {
  DeleteStmt stmt;
  ELE_RETURN_NOT_OK(ExpectKeyword("FROM"));
  ELE_ASSIGN_OR_RETURN(stmt.table_name, ExpectIdent());
  if (MatchKeyword("WHERE")) {
    ELE_ASSIGN_OR_RETURN(stmt.where, ParseExpr());
  }
  return stmt;
}

Result<UpdateStmt> Parser::ParseUpdate() {
  UpdateStmt stmt;
  ELE_ASSIGN_OR_RETURN(stmt.table_name, ExpectIdent());
  ELE_RETURN_NOT_OK(ExpectKeyword("SET"));
  do {
    ELE_ASSIGN_OR_RETURN(std::string col, ExpectIdent());
    ELE_RETURN_NOT_OK(ExpectSymbol("="));
    ELE_ASSIGN_OR_RETURN(SqlExprPtr value, ParseExpr());
    stmt.sets.emplace_back(std::move(col), std::move(value));
  } while (MatchSymbol(","));
  if (MatchKeyword("WHERE")) {
    ELE_ASSIGN_OR_RETURN(stmt.where, ParseExpr());
  }
  return stmt;
}

Result<Statement> Parser::ParseStatement() {
  Statement stmt;
  if (MatchKeyword("EXPLAIN")) {
    stmt.kind = StatementKind::kExplain;
    stmt.explain_analyze = MatchKeyword("ANALYZE");
    ELE_ASSIGN_OR_RETURN(stmt.select, ParseSelectStmt());
  } else if (CheckKeyword("SELECT") || Peek().kind == TokenKind::kHintBlock) {
    stmt.kind = StatementKind::kSelect;
    ELE_ASSIGN_OR_RETURN(stmt.select, ParseSelectStmt());
  } else if (MatchKeyword("CREATE")) {
    if (MatchKeyword("TABLE")) {
      stmt.kind = StatementKind::kCreateTable;
      ELE_ASSIGN_OR_RETURN(CreateTableStmt ct, ParseCreateTable());
      stmt.create_table = std::make_unique<CreateTableStmt>(std::move(ct));
    } else if (MatchKeyword("INDEX")) {
      stmt.kind = StatementKind::kCreateIndex;
      ELE_ASSIGN_OR_RETURN(CreateIndexStmt ci, ParseCreateIndex());
      stmt.create_index = std::make_unique<CreateIndexStmt>(std::move(ci));
    } else {
      return Status::ParseError("expected TABLE or INDEX after CREATE");
    }
  } else if (MatchKeyword("INSERT")) {
    stmt.kind = StatementKind::kInsert;
    ELE_ASSIGN_OR_RETURN(InsertStmt ins, ParseInsert());
    stmt.insert = std::make_unique<InsertStmt>(std::move(ins));
  } else if (MatchKeyword("DELETE")) {
    stmt.kind = StatementKind::kDelete;
    ELE_ASSIGN_OR_RETURN(DeleteStmt del, ParseDelete());
    stmt.delete_stmt = std::make_unique<DeleteStmt>(std::move(del));
  } else if (MatchKeyword("UPDATE")) {
    stmt.kind = StatementKind::kUpdate;
    ELE_ASSIGN_OR_RETURN(UpdateStmt upd, ParseUpdate());
    stmt.update_stmt = std::make_unique<UpdateStmt>(std::move(upd));
  } else if (MatchKeyword("BEGIN") || MatchKeyword("START")) {
    stmt.kind = StatementKind::kBegin;
    MatchKeyword("TRANSACTION");
    MatchKeyword("WORK");
  } else if (MatchKeyword("COMMIT")) {
    stmt.kind = StatementKind::kCommit;
    MatchKeyword("TRANSACTION");
    MatchKeyword("WORK");
  } else if (MatchKeyword("ROLLBACK") || MatchKeyword("ABORT")) {
    stmt.kind = StatementKind::kRollback;
    MatchKeyword("TRANSACTION");
    MatchKeyword("WORK");
  } else if (MatchKeyword("CHECKPOINT")) {
    stmt.kind = StatementKind::kCheckpoint;
  } else {
    return Status::ParseError(
        "expected SELECT, CREATE, INSERT, DELETE, UPDATE, BEGIN, COMMIT, "
        "ROLLBACK or CHECKPOINT");
  }
  MatchSymbol(";");
  if (!AtEnd()) {
    return Status::ParseError("trailing tokens near offset " +
                              std::to_string(Peek().offset));
  }
  return stmt;
}

}  // namespace

Result<Statement> ParseStatement(const std::string& sql) {
  ELE_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(sql));
  Parser parser(std::move(tokens));
  return parser.ParseStatement();
}

void CollectTableNames(const SelectStmt& stmt, std::vector<std::string>* out) {
  for (const TableRef& ref : stmt.from) {
    if (ref.derived != nullptr) {
      CollectTableNames(*ref.derived, out);
    } else {
      out->push_back(ref.table_name);
    }
  }
}

Result<std::unique_ptr<SelectStmt>> ParseSelect(const std::string& sql) {
  ELE_ASSIGN_OR_RETURN(Statement stmt, ParseStatement(sql));
  if (stmt.kind != StatementKind::kSelect) {
    return Status::ParseError("expected a SELECT statement");
  }
  return std::move(stmt.select);
}

}  // namespace elephant
