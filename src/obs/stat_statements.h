#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/thread_annotations.h"
#include "storage/disk_manager.h"

namespace elephant {
namespace obs {

/// Normalizes a SQL statement into its *shape*: string and numeric literals
/// become `?`, whitespace runs collapse to one space, and everything outside
/// quoted literals is lower-cased (identifiers are case-insensitive in this
/// engine). Two statements differing only in literal values normalize to the
/// same text — the pg_stat_statements grouping discipline, done lexically
/// because the engine has no post-parse query tree serializer.
std::string NormalizeSql(std::string_view sql);

/// FNV-1a 64-bit hash of NormalizeSql(sql): the statement fingerprint.
uint64_t FingerprintSql(std::string_view sql);

/// FNV-1a 64-bit hash of NormalizeSql(plan_text): the plan *shape* hash.
/// Rendered plans embed literal-dependent text — predicate constants and
/// cardinality estimates ("rows=1432") — so hashing the raw rendering would
/// split one statement family across registry entries whenever a literal
/// shifts an estimate. Normalizing first keeps the operator tree and column
/// names while erasing the numbers, so a plan hash only changes when the
/// planner actually picks a different plan.
uint64_t PlanShapeHash(std::string_view plan_text);

/// 16-digit lower-case hex rendering of a fingerprint or plan hash (64-bit
/// hashes do not fit the engine's signed INT64 SQL type, so the virtual
/// tables and exports carry them as hex strings).
std::string HexHash(uint64_t value);

/// The operator class of an EXPLAIN label: its first token ("HashJoin",
/// "ClusteredScan on lineitem" -> "ClusteredScan").
std::string OperatorClassOf(std::string_view label);

/// One instrumented operator's contribution to the modeled-vs-measured
/// residual bookkeeping: the disk model's prediction for the operator's
/// self-attributed page traffic vs the wall-clock seconds it actually spent.
struct OperatorResidual {
  std::string op_class;
  double modeled_io_seconds = 0;
  double measured_seconds = 0;
};

/// One finished statement, as the engine hands it to StatStatements.
/// `residuals` is empty unless the statement ran instrumented (EXPLAIN
/// ANALYZE): per-operator wall time only exists when every node is wrapped.
struct StatementSample {
  std::string sql;            ///< raw statement text (normalized internally)
  uint64_t plan_hash = 0;     ///< PlanShapeHash of the rendered plan tree
  uint64_t rows = 0;
  double latency_seconds = 0; ///< measured wall-clock execution time
  double io_seconds = 0;      ///< modeled disk time for `io`
  IoStats io;                 ///< physical page traffic, incl. readahead
  std::vector<OperatorResidual> residuals;
};

/// Cumulative per-operator-class calibration data: how far the disk model's
/// predictions drift from measured wall time for this statement shape. The
/// ROADMAP's strategy advisor reads ResidualSeconds() to learn which
/// operator classes the model over- or under-charges.
struct OperatorClassStats {
  uint64_t operators = 0;        ///< instrumented operator instances folded in
  double modeled_io_seconds = 0; ///< disk-model prediction, summed
  double measured_seconds = 0;   ///< self-attributed wall seconds, summed

  /// Positive: the model undercharges this class (CPU-bound or mispriced
  /// I/O); negative: it overcharges (cache hits the model assumes go to disk).
  double ResidualSeconds() const { return measured_seconds - modeled_io_seconds; }
};

/// One registry entry: everything accumulated for a fingerprint × plan-hash
/// statement family.
struct StatementStats {
  std::string query;        ///< normalized statement text
  uint64_t fingerprint = 0;
  uint64_t plan_hash = 0;

  uint64_t calls = 0;
  uint64_t rows = 0;
  uint64_t instrumented_calls = 0;  ///< calls that contributed residuals

  double total_seconds = 0;     ///< measured wall time, summed
  double total_io_seconds = 0;  ///< modeled disk time, summed
  double min_seconds = 0;
  double max_seconds = 0;
  IoStats io;

  /// Per-call latency histogram over StatStatements::LatencyBounds();
  /// one extra overflow bucket at the end.
  std::vector<uint64_t> latency_buckets;

  std::map<std::string, OperatorClassStats> operator_classes;

  double MeanSeconds() const {
    return calls > 0 ? total_seconds / static_cast<double>(calls) : 0;
  }
  /// Approximate per-call latency quantile (uniform within buckets).
  double QuantileSeconds(double q) const;
  /// Statement-level model drift: measured wall time minus modeled I/O time.
  double ResidualSeconds() const { return total_seconds - total_io_seconds; }
};

/// Thread-safe, bounded, engine-lifetime registry of cumulative statement
/// statistics keyed by statement fingerprint × plan hash — the engine's
/// pg_stat_statements. Entries are LRU-evicted past `capacity` (evictions
/// counted, never silent), so a workload with unbounded distinct statement
/// shapes cannot grow the registry without bound.
///
/// Writes are one mutex acquisition per finished statement (same cadence as
/// the metrics histograms); snapshots copy entries out so exporters never
/// hold the lock while formatting.
class StatStatements {
 public:
  static constexpr size_t kDefaultCapacity = 512;

  /// Per-call latency histogram bucket upper bounds (shared by every entry).
  static const std::vector<double>& LatencyBounds();

  explicit StatStatements(size_t capacity = kDefaultCapacity);
  StatStatements(const StatStatements&) = delete;
  StatStatements& operator=(const StatStatements&) = delete;

  /// Folds one finished statement into its entry (created — possibly
  /// evicting the least-recently-used entry — when new).
  void Record(const StatementSample& sample);

  /// Copies of every entry, most-recently-used first.
  std::vector<StatementStats> Snapshot() const;

  size_t size() const;
  size_t capacity() const { return capacity_; }
  uint64_t evicted_entries() const;

  /// Drops every entry and zeroes the eviction counter (tests).
  void Reset();

  /// The whole registry as one JSON document:
  ///   {"capacity":N, "entries":N, "evicted_entries":N,
  ///    "latency_bounds":[...],
  ///    "totals":{"calls":..,"rows":..,"total_seconds":..,
  ///              "total_io_seconds":..,"io":{...}},
  ///    "statements":[{...per-entry stats, hex hashes, residuals...}]}
  /// `totals` sums the surviving entries (reconciliation hook for
  /// scripts/telemetry_check.py).
  std::string ToJson() const;

  /// The top `n` entries by total_io_seconds as Prometheus text-exposition
  /// families (`elephant_stat_statements_{calls,seconds,io_seconds}_total`),
  /// labeled by fingerprint and plan hash. Appended to ExportMetrics()
  /// output; empty string when the registry is empty.
  std::string ToPrometheusTopN(size_t n) const;

 private:
  using Key = std::pair<uint64_t, uint64_t>;  ///< fingerprint, plan_hash

  const size_t capacity_;
  mutable Mutex mu_{LockRank::kStatStatements, "StatStatements::mu_"};
  /// Front = most recently used; `index_` points into the list.
  std::list<StatementStats> entries_ GUARDED_BY(mu_);
  std::map<Key, std::list<StatementStats>::iterator> index_ GUARDED_BY(mu_);
  uint64_t evicted_ GUARDED_BY(mu_) = 0;
};

}  // namespace obs
}  // namespace elephant
