#include "obs/query_log.h"

#include "obs/json.h"

namespace elephant {
namespace obs {

uint64_t Fnv1a64(std::string_view data) {
  uint64_t h = 14695981039346656037ull;
  for (char c : data) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

QueryLog::~QueryLog() { Close(); }

bool QueryLog::Open(const std::string& path, double threshold_seconds) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  MutexLock lock(mu_);
  if (file_ != nullptr) std::fclose(file_);
  file_ = f;
  threshold_seconds_ = threshold_seconds;
  entries_written_ = 0;
  enabled_.store(true, std::memory_order_relaxed);
  return true;
}

void QueryLog::Close() {
  MutexLock lock(mu_);
  enabled_.store(false, std::memory_order_relaxed);
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

double QueryLog::threshold_seconds() const {
  MutexLock lock(mu_);
  return threshold_seconds_;
}

void QueryLog::Record(const QueryLogEntry& entry) {
  if (!enabled()) return;
  if (entry.latency_seconds < threshold_seconds()) return;
  JsonWriter w;
  w.BeginObject();
  w.Key("sql").String(entry.sql);
  w.Key("plan_hash").UInt(entry.plan_hash);
  w.Key("sql_fingerprint").UInt(entry.sql_fingerprint);
  w.Key("latency_ms").Double(entry.latency_seconds * 1e3);
  w.Key("io_ms").Double(entry.io_seconds * 1e3);
  w.Key("sequential_reads").UInt(entry.io.sequential_reads);
  w.Key("random_reads").UInt(entry.io.random_reads);
  w.Key("page_writes").UInt(entry.io.page_writes);
  w.Key("rows").UInt(entry.rows);
  w.Key("session_id").Int(entry.session_id);
  w.Key("wait_profile").BeginObject();
  w.Key("total_seconds").Double(entry.wait_profile.TotalSeconds());
  w.Key("lwlock_seconds")
      .Double(entry.wait_profile.ClassSeconds(WaitClass::kLWLock));
  w.Key("lock_seconds")
      .Double(entry.wait_profile.ClassSeconds(WaitClass::kLock));
  w.Key("io_seconds").Double(entry.wait_profile.ClassSeconds(WaitClass::kIO));
  w.Key("wal_seconds")
      .Double(entry.wait_profile.ClassSeconds(WaitClass::kWAL));
  w.Key("condvar_seconds")
      .Double(entry.wait_profile.ClassSeconds(WaitClass::kCondVar));
  w.Key("scheduler_seconds")
      .Double(entry.wait_profile.ClassSeconds(WaitClass::kScheduler));
  w.Key("top_event").String(entry.wait_profile.TopEventName());
  w.EndObject();
  w.EndObject();
  const std::string line = std::move(w).str();

  MutexLock lock(mu_);
  if (file_ == nullptr || entry.latency_seconds < threshold_seconds_) return;
  std::fwrite(line.data(), 1, line.size(), file_);
  std::fputc('\n', file_);
  std::fflush(file_);  // tail-able while the engine runs
  entries_written_++;
}

uint64_t QueryLog::EntriesWritten() const {
  MutexLock lock(mu_);
  return entries_written_;
}

}  // namespace obs
}  // namespace elephant
