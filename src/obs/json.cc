#include "obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace elephant {
namespace obs {

std::string JsonWriter::Escape(std::string_view v) {
  std::string out;
  out.reserve(v.size() + 2);
  for (char c : v) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::BeforeValue() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!has_element_.empty()) {
    if (has_element_.back()) out_ += ',';
    has_element_.back() = true;
  }
}

JsonWriter& JsonWriter::BeginObject() {
  BeforeValue();
  out_ += '{';
  has_element_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  has_element_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeforeValue();
  out_ += '[';
  has_element_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  has_element_.pop_back();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view name) {
  if (!has_element_.empty()) {
    if (has_element_.back()) out_ += ',';
    has_element_.back() = true;
  }
  out_ += '"';
  out_ += Escape(name);
  out_ += "\":";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::String(std::string_view v) {
  BeforeValue();
  out_ += '"';
  out_ += Escape(v);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::Int(int64_t v) {
  BeforeValue();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::UInt(uint64_t v) {
  BeforeValue();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::Double(double v) {
  BeforeValue();
  if (!std::isfinite(v)) {
    out_ += "null";  // JSON has no Inf/NaN
    return *this;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::Bool(bool v) {
  BeforeValue();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::Null() {
  BeforeValue();
  out_ += "null";
  return *this;
}

namespace {

/// Recursive-descent RFC 8259 parser that only tracks position.
class JsonValidator {
 public:
  explicit JsonValidator(std::string_view doc) : doc_(doc) {}

  bool Validate(std::string* error) {
    SkipWhitespace();
    if (!ParseValue()) {
      if (error != nullptr) *error = error_;
      return false;
    }
    SkipWhitespace();
    if (pos_ != doc_.size()) {
      Fail("trailing data after document");
      if (error != nullptr) *error = error_;
      return false;
    }
    return true;
  }

 private:
  static constexpr int kMaxDepth = 256;

  bool Fail(const std::string& what) {
    if (error_.empty()) {
      error_ = what + " at offset " + std::to_string(pos_);
    }
    return false;
  }

  bool AtEnd() const { return pos_ >= doc_.size(); }
  char Peek() const { return doc_[pos_]; }

  void SkipWhitespace() {
    while (!AtEnd()) {
      const char c = Peek();
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      pos_++;
    }
  }

  bool Expect(char c) {
    if (AtEnd() || Peek() != c) {
      return Fail(std::string("expected '") + c + "'");
    }
    pos_++;
    return true;
  }

  bool ParseLiteral(std::string_view word) {
    if (doc_.substr(pos_, word.size()) != word) {
      return Fail("invalid literal");
    }
    pos_ += word.size();
    return true;
  }

  bool ParseString() {
    if (!Expect('"')) return false;
    while (true) {
      if (AtEnd()) return Fail("unterminated string");
      const unsigned char c = static_cast<unsigned char>(doc_[pos_]);
      if (c == '"') {
        pos_++;
        return true;
      }
      if (c < 0x20) return Fail("unescaped control character in string");
      if (c == '\\') {
        pos_++;
        if (AtEnd()) return Fail("unterminated escape");
        const char e = doc_[pos_];
        if (e == 'u') {
          for (int i = 0; i < 4; i++) {
            pos_++;
            if (AtEnd() || !std::isxdigit(static_cast<unsigned char>(doc_[pos_]))) {
              return Fail("invalid \\u escape");
            }
          }
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' && e != 'f' &&
                   e != 'n' && e != 'r' && e != 't') {
          return Fail("invalid escape character");
        }
      }
      pos_++;
    }
  }

  bool ParseDigits() {
    if (AtEnd() || !std::isdigit(static_cast<unsigned char>(Peek()))) {
      return Fail("expected digit");
    }
    while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) pos_++;
    return true;
  }

  bool ParseNumber() {
    if (!AtEnd() && Peek() == '-') pos_++;
    if (AtEnd()) return Fail("truncated number");
    if (Peek() == '0') {
      pos_++;
    } else if (!ParseDigits()) {
      return false;
    }
    if (!AtEnd() && Peek() == '.') {
      pos_++;
      if (!ParseDigits()) return false;
    }
    if (!AtEnd() && (Peek() == 'e' || Peek() == 'E')) {
      pos_++;
      if (!AtEnd() && (Peek() == '+' || Peek() == '-')) pos_++;
      if (!ParseDigits()) return false;
    }
    return true;
  }

  bool ParseObject() {
    if (!Expect('{')) return false;
    SkipWhitespace();
    if (!AtEnd() && Peek() == '}') {
      pos_++;
      return true;
    }
    while (true) {
      SkipWhitespace();
      if (!ParseString()) return false;
      SkipWhitespace();
      if (!Expect(':')) return false;
      SkipWhitespace();
      if (!ParseValue()) return false;
      SkipWhitespace();
      if (AtEnd()) return Fail("unterminated object");
      if (Peek() == ',') {
        pos_++;
        continue;
      }
      return Expect('}');
    }
  }

  bool ParseArray() {
    if (!Expect('[')) return false;
    SkipWhitespace();
    if (!AtEnd() && Peek() == ']') {
      pos_++;
      return true;
    }
    while (true) {
      SkipWhitespace();
      if (!ParseValue()) return false;
      SkipWhitespace();
      if (AtEnd()) return Fail("unterminated array");
      if (Peek() == ',') {
        pos_++;
        continue;
      }
      return Expect(']');
    }
  }

  bool ParseValue() {
    if (AtEnd()) return Fail("unexpected end of document");
    if (++depth_ > kMaxDepth) return Fail("nesting too deep");
    bool ok;
    switch (Peek()) {
      case '{': ok = ParseObject(); break;
      case '[': ok = ParseArray(); break;
      case '"': ok = ParseString(); break;
      case 't': ok = ParseLiteral("true"); break;
      case 'f': ok = ParseLiteral("false"); break;
      case 'n': ok = ParseLiteral("null"); break;
      default: ok = ParseNumber(); break;
    }
    depth_--;
    return ok;
  }

  std::string_view doc_;
  size_t pos_ = 0;
  int depth_ = 0;
  std::string error_;
};

}  // namespace

bool ValidateJson(std::string_view doc, std::string* error) {
  return JsonValidator(doc).Validate(error);
}

}  // namespace obs
}  // namespace elephant
