#include "obs/json.h"

#include <cmath>
#include <cstdio>

namespace elephant {
namespace obs {

std::string JsonWriter::Escape(std::string_view v) {
  std::string out;
  out.reserve(v.size() + 2);
  for (char c : v) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::BeforeValue() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!has_element_.empty()) {
    if (has_element_.back()) out_ += ',';
    has_element_.back() = true;
  }
}

JsonWriter& JsonWriter::BeginObject() {
  BeforeValue();
  out_ += '{';
  has_element_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  has_element_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeforeValue();
  out_ += '[';
  has_element_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  has_element_.pop_back();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view name) {
  if (!has_element_.empty()) {
    if (has_element_.back()) out_ += ',';
    has_element_.back() = true;
  }
  out_ += '"';
  out_ += Escape(name);
  out_ += "\":";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::String(std::string_view v) {
  BeforeValue();
  out_ += '"';
  out_ += Escape(v);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::Int(int64_t v) {
  BeforeValue();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::UInt(uint64_t v) {
  BeforeValue();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::Double(double v) {
  BeforeValue();
  if (!std::isfinite(v)) {
    out_ += "null";  // JSON has no Inf/NaN
    return *this;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::Bool(bool v) {
  BeforeValue();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::Null() {
  BeforeValue();
  out_ += "null";
  return *this;
}

}  // namespace obs
}  // namespace elephant
