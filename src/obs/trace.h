#pragma once

#include <chrono>
#include <string>
#include <vector>

#include "obs/json.h"

namespace elephant {
namespace obs {

/// One finished span: a named phase with its nesting depth and duration.
/// Spans appear in start order, so a depth-annotated flat list reconstructs
/// the tree.
struct SpanRecord {
  std::string name;
  int depth = 0;
  double seconds = 0;
};

/// The phase timings of one query, recorded by a Tracer and attached to
/// QueryResult: parse -> bind -> plan -> execute, plus any nested phases.
struct QueryTrace {
  std::vector<SpanRecord> spans;

  /// Seconds of the first span with this name, or 0 when absent.
  double SecondsFor(const std::string& name) const;

  /// "parse 0.01ms | bind 0.02ms | plan 0.1ms | execute 5.2ms" (top level
  /// spans only; nested spans are indented on ToString's following lines).
  std::string ToString() const;
  void AppendJson(JsonWriter* w) const;
};

/// Records nested, named spans with wall-clock durations. RAII handles keep
/// nesting honest: a span ends when its Scope is destroyed (or End()ed).
class Tracer {
 public:
  class Scope {
   public:
    Scope() = default;
    Scope(Tracer* tracer, size_t index, uint64_t epoch)
        : tracer_(tracer), index_(index), epoch_(epoch) {}
    ~Scope() { End(); }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;
    Scope(Scope&& o) noexcept { *this = std::move(o); }
    Scope& operator=(Scope&& o) noexcept {
      if (this != &o) {
        End();
        tracer_ = o.tracer_;
        index_ = o.index_;
        epoch_ = o.epoch_;
        o.tracer_ = nullptr;
      }
      return *this;
    }

    void End();

   private:
    Tracer* tracer_ = nullptr;
    size_t index_ = 0;
    uint64_t epoch_ = 0;  ///< scopes from before the last Finish() are inert
  };

  /// Opens a span nested under any still-open spans.
  Scope StartSpan(std::string name);

  /// Closes any dangling spans and returns the recorded trace.
  QueryTrace Finish();

  const std::vector<SpanRecord>& spans() const { return spans_; }

 private:
  friend class Scope;

  std::vector<SpanRecord> spans_;
  std::vector<std::chrono::steady_clock::time_point> starts_;  ///< per span
  std::vector<char> open_;  ///< per span: still waiting for End()
  int open_depth_ = 0;
  uint64_t epoch_ = 0;  ///< bumped by Finish(); outstanding Scopes go inert
};

}  // namespace obs
}  // namespace elephant
