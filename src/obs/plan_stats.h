#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "obs/json.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"

namespace elephant {
namespace obs {

/// Runtime statistics of one physical operator, gathered by an
/// InstrumentedExecutor. All values are INCLUSIVE of the operator's children
/// (a child's Next() runs inside its parent's Next()); self-attributed
/// numbers are derived from the plan tree by subtracting child totals.
struct OperatorStats {
  uint64_t init_calls = 0;
  uint64_t next_calls = 0;   ///< Next() invocations, including the final false
  uint64_t rows = 0;         ///< rows produced
  double seconds = 0;        ///< wall time inside Init() + Next()
  IoStats io;                ///< disk traffic during Init() + Next()
  uint64_t pool_hits = 0;    ///< buffer-pool hits during Init() + Next()
  uint64_t pool_misses = 0;  ///< buffer-pool misses during Init() + Next()
};

/// One node of the physical plan tree, as produced by the planner. Carries
/// the EXPLAIN label, the planner's estimates, and (when the plan was built
/// for EXPLAIN ANALYZE / instrumented execution) a stats slot filled in while
/// the plan runs.
struct PlanNode {
  std::string label;
  double est_rows = -1;  ///< planner cardinality estimate; < 0 = unknown
  double est_cost = -1;  ///< cumulative cost units (~rows processed in subtree)
  std::shared_ptr<OperatorStats> stats;  ///< null unless instrumented
  std::vector<std::unique_ptr<PlanNode>> children;
};

/// Self-attributed (exclusive) numbers for one operator: the node's
/// inclusive stats minus the sum of its direct children's inclusive stats.
/// Per-operator I/O pages sum exactly to the query-level IoStats total.
struct OperatorBreakdown {
  std::string op;           ///< first line of the node label
  int depth = 0;
  uint64_t rows = 0;        ///< rows produced (not self-attributed)
  uint64_t next_calls = 0;
  double seconds = 0;       ///< self wall time
  uint64_t seq_reads = 0;   ///< self sequential page reads
  uint64_t rand_reads = 0;  ///< self random page reads
  uint64_t page_writes = 0; ///< self page writes
  uint64_t pool_hits = 0;
  uint64_t pool_misses = 0;
  double est_rows = -1;
};

/// Renders the plan tree as indented "-> label [est_rows=... cost=...]"
/// lines. With `with_actuals`, appends "(actual rows=... time=... io_seq=...
/// io_rand=...)" per node; io counts are self-attributed.
std::string RenderPlanTree(const PlanNode& root, bool with_actuals);

/// Pre-order flattening with self-attributed stats (requires an instrumented
/// run; nodes without stats report zeros).
std::vector<OperatorBreakdown> FlattenPlan(const PlanNode& root);

/// JSON form of the annotated tree: {"op":..., "est_rows":..., "actual":
/// {...}, "children":[...]}.
void AppendPlanJson(const PlanNode& root, bool with_actuals, JsonWriter* w);

}  // namespace obs
}  // namespace elephant
