#include "obs/instrumented_executor.h"

#include <chrono>

namespace elephant {
namespace obs {

namespace {

/// Snapshot of the shared I/O counters a call might advance.
struct IoSnapshot {
  IoStats disk;
  uint64_t pool_hits;
  uint64_t pool_misses;
};

IoSnapshot Snap(ExecContext* ctx) {
  IoSnapshot s;
  // Under an attached per-query/per-worker sink, snapshot the sink: it sees
  // only this thread of this query, so operator deltas stay exact even when
  // other sessions or workers drive I/O concurrently. Without a sink (bare
  // executors in tests), fall back to the global counters as before.
  if (const IoSink* sink = CurrentIoSink()) {
    s.disk = sink->ToStats();
    s.pool_hits = sink->pool_hits.load(std::memory_order_relaxed);
    s.pool_misses = sink->pool_misses.load(std::memory_order_relaxed);
    return s;
  }
  s.disk = ctx->pool()->disk()->stats();
  const BufferPoolStats pool = ctx->pool()->stats();
  s.pool_hits = pool.hits;
  s.pool_misses = pool.misses;
  return s;
}

void Accumulate(const IoSnapshot& before, const IoSnapshot& after,
                double seconds, OperatorStats* stats) {
  stats->seconds += seconds;
  const IoStats delta = after.disk - before.disk;
  stats->io.sequential_reads += delta.sequential_reads;
  stats->io.random_reads += delta.random_reads;
  stats->io.page_writes += delta.page_writes;
  stats->pool_hits += after.pool_hits - before.pool_hits;
  stats->pool_misses += after.pool_misses - before.pool_misses;
}

}  // namespace

Status InstrumentedExecutor::Init() {
  const IoSnapshot before = Snap(ctx_);
  const auto t0 = std::chrono::steady_clock::now();
  Status s = child_->Init();
  const auto t1 = std::chrono::steady_clock::now();
  Accumulate(before, Snap(ctx_), std::chrono::duration<double>(t1 - t0).count(),
             stats_.get());
  stats_->init_calls++;
  return s;
}

Result<bool> InstrumentedExecutor::Next(Row* out) {
  const IoSnapshot before = Snap(ctx_);
  const auto t0 = std::chrono::steady_clock::now();
  Result<bool> has = child_->Next(out);
  const auto t1 = std::chrono::steady_clock::now();
  Accumulate(before, Snap(ctx_), std::chrono::duration<double>(t1 - t0).count(),
             stats_.get());
  stats_->next_calls++;
  if (has.ok() && has.value()) stats_->rows++;
  return has;
}

Status InstrumentedBatchExecutor::Init() {
  const IoSnapshot before = Snap(ctx_);
  const auto t0 = std::chrono::steady_clock::now();
  Status s = child_->Init();
  const auto t1 = std::chrono::steady_clock::now();
  Accumulate(before, Snap(ctx_), std::chrono::duration<double>(t1 - t0).count(),
             stats_.get());
  stats_->init_calls++;
  return s;
}

Result<bool> InstrumentedBatchExecutor::NextBatch(Batch* out) {
  const IoSnapshot before = Snap(ctx_);
  const auto t0 = std::chrono::steady_clock::now();
  Result<bool> has = child_->NextBatch(out);
  const auto t1 = std::chrono::steady_clock::now();
  Accumulate(before, Snap(ctx_), std::chrono::duration<double>(t1 - t0).count(),
             stats_.get());
  stats_->next_calls++;
  if (has.ok() && has.value()) stats_->rows += out->ActiveCount();
  return has;
}

}  // namespace obs
}  // namespace elephant
