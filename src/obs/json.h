#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace elephant {
namespace obs {

/// Minimal streaming JSON writer. Produces compact, valid JSON with correct
/// string escaping; used for EXPLAIN ANALYZE ToJson(), metrics snapshots, and
/// the bench telemetry sink. Commas are inserted automatically.
///
///   JsonWriter w;
///   w.BeginObject().Key("rows").UInt(12).Key("op").String("Scan").EndObject();
///   std::string out = std::move(w).str();
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  /// Emits an object key; must be followed by exactly one value.
  JsonWriter& Key(std::string_view name);

  JsonWriter& String(std::string_view v);
  JsonWriter& Int(int64_t v);
  JsonWriter& UInt(uint64_t v);
  JsonWriter& Double(double v);
  JsonWriter& Bool(bool v);
  JsonWriter& Null();

  const std::string& str() const& { return out_; }
  std::string str() && { return std::move(out_); }

  /// Escapes `v` per RFC 8259 (quotes, backslash, control characters).
  static std::string Escape(std::string_view v);

 private:
  void BeforeValue();

  std::string out_;
  /// Per open container: true once the first element has been written.
  std::vector<bool> has_element_;
  bool after_key_ = false;
};

/// Strict RFC 8259 well-formedness check over a complete document. On
/// failure returns false and, when `error` is non-null, describes the first
/// problem with its byte offset. Used by tests and the bench telemetry sink
/// to prove exported documents (traces, metrics, heatmaps) parse before they
/// are handed to external tools.
bool ValidateJson(std::string_view doc, std::string* error = nullptr);

}  // namespace obs
}  // namespace elephant
