#include "obs/heatmap.h"

#include <algorithm>
#include <cstdio>
#include <vector>

#include "obs/json.h"

namespace elephant {
namespace obs {

namespace {

thread_local const std::string* t_access_label = nullptr;

void AppendObjectJson(const ObjectIoStats& s, const DiskModel& model,
                      JsonWriter* w) {
  w->BeginObject();
  w->Key("pool_hits").UInt(s.pool_hits);
  w->Key("pool_faults").UInt(s.pool_faults);
  w->Key("sequential_reads").UInt(s.sequential_reads);
  w->Key("random_reads").UInt(s.random_reads);
  w->Key("prefetch_hits").UInt(s.prefetch_hits);
  w->Key("page_writes").UInt(s.page_writes);
  w->Key("io_ms").Double(s.ModeledReadSeconds(model) * 1e3);
  w->EndObject();
}

}  // namespace

const std::string& UnattributedLabel() {
  static const std::string label = "(unattributed)";
  return label;
}

const std::string& CurrentAccessLabel() {
  return t_access_label != nullptr ? *t_access_label : UnattributedLabel();
}

AccessScope::AccessScope(const std::string* label) : prev_(t_access_label) {
  if (label != nullptr) t_access_label = label;
}

AccessScope::~AccessScope() { t_access_label = prev_; }

void AccessHeatmap::RecordHit(const std::string& label) {
  MutexLock lock(mu_);
  objects_[label].pool_hits++;
}

void AccessHeatmap::RecordFault(const std::string& label) {
  MutexLock lock(mu_);
  objects_[label].pool_faults++;
}

void AccessHeatmap::RecordRead(const std::string& label, bool sequential,
                               bool prefetch_hit) {
  MutexLock lock(mu_);
  ObjectIoStats& s = objects_[label];
  if (sequential) {
    s.sequential_reads++;
    if (prefetch_hit) s.prefetch_hits++;
  } else {
    s.random_reads++;
  }
}

void AccessHeatmap::RecordWrite(const std::string& label) {
  MutexLock lock(mu_);
  objects_[label].page_writes++;
}

std::map<std::string, ObjectIoStats> AccessHeatmap::Snapshot() const {
  MutexLock lock(mu_);
  return objects_;
}

ObjectIoStats AccessHeatmap::Total() const {
  MutexLock lock(mu_);
  ObjectIoStats total;
  for (const auto& [label, s] : objects_) total.Add(s);
  return total;
}

void AccessHeatmap::Reset() {
  MutexLock lock(mu_);
  objects_.clear();
}

std::string AccessHeatmap::ToJson(const DiskModel& model) const {
  const std::map<std::string, ObjectIoStats> snap = Snapshot();
  ObjectIoStats total;
  JsonWriter w;
  w.BeginObject();
  w.Key("objects").BeginObject();
  for (const auto& [label, s] : snap) {
    total.Add(s);
    w.Key(label);
    AppendObjectJson(s, model, &w);
  }
  w.EndObject();
  w.Key("total");
  AppendObjectJson(total, model, &w);
  w.EndObject();
  return std::move(w).str();
}

std::string AccessHeatmap::ToString(const DiskModel& model) const {
  const std::map<std::string, ObjectIoStats> snap = Snapshot();
  std::vector<std::pair<std::string, ObjectIoStats>> rows(snap.begin(),
                                                          snap.end());
  std::sort(rows.begin(), rows.end(), [&](const auto& a, const auto& b) {
    return a.second.ModeledReadSeconds(model) >
           b.second.ModeledReadSeconds(model);
  });
  size_t width = 6;  // strlen("object")
  for (const auto& [label, s] : rows) width = std::max(width, label.size());
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "%-*s %10s %10s %12s %10s %10s %10s\n",
                static_cast<int>(width), "object", "hits", "faults",
                "seq_reads", "rnd_reads", "writes", "io_ms");
  std::string out = buf;
  ObjectIoStats total;
  for (const auto& [label, s] : rows) {
    total.Add(s);
    std::snprintf(buf, sizeof(buf),
                  "%-*s %10llu %10llu %12llu %10llu %10llu %10.2f\n",
                  static_cast<int>(width), label.c_str(),
                  static_cast<unsigned long long>(s.pool_hits),
                  static_cast<unsigned long long>(s.pool_faults),
                  static_cast<unsigned long long>(s.sequential_reads),
                  static_cast<unsigned long long>(s.random_reads),
                  static_cast<unsigned long long>(s.page_writes),
                  s.ModeledReadSeconds(model) * 1e3);
    out += buf;
  }
  std::snprintf(buf, sizeof(buf),
                "%-*s %10llu %10llu %12llu %10llu %10llu %10.2f\n",
                static_cast<int>(width), "TOTAL",
                static_cast<unsigned long long>(total.pool_hits),
                static_cast<unsigned long long>(total.pool_faults),
                static_cast<unsigned long long>(total.sequential_reads),
                static_cast<unsigned long long>(total.random_reads),
                static_cast<unsigned long long>(total.page_writes),
                total.ModeledReadSeconds(model) * 1e3);
  out += buf;
  return out;
}

std::map<std::string, ObjectIoStats> HeatmapDelta(
    const std::map<std::string, ObjectIoStats>& before,
    const std::map<std::string, ObjectIoStats>& after) {
  std::map<std::string, ObjectIoStats> delta;
  for (const auto& [label, a] : after) {
    ObjectIoStats d = a;
    const auto it = before.find(label);
    if (it != before.end()) {
      const ObjectIoStats& b = it->second;
      d.pool_hits -= b.pool_hits;
      d.pool_faults -= b.pool_faults;
      d.sequential_reads -= b.sequential_reads;
      d.random_reads -= b.random_reads;
      d.prefetch_hits -= b.prefetch_hits;
      d.page_writes -= b.page_writes;
    }
    if (d.pool_hits == 0 && d.pool_faults == 0 && d.sequential_reads == 0 &&
        d.random_reads == 0 && d.page_writes == 0) {
      continue;
    }
    delta[label] = d;
  }
  return delta;
}

}  // namespace obs
}  // namespace elephant
