#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>

namespace elephant {
namespace obs {

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  buckets_.assign(bounds_.size() + 1, 0);
}

void Histogram::Observe(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  MutexLock lock(mu_);
  buckets_[static_cast<size_t>(it - bounds_.begin())]++;
  count_++;
  sum_ += v;
}

double Histogram::Quantile(double q) const {
  MutexLock lock(mu_);
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count_);
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets_.size(); i++) {
    if (buckets_[i] == 0) continue;
    if (static_cast<double>(seen + buckets_[i]) >= target) {
      if (i >= bounds_.size()) return bounds_.empty() ? 0 : bounds_.back();
      const double lo = i == 0 ? 0 : bounds_[i - 1];
      const double hi = bounds_[i];
      const double frac =
          (target - static_cast<double>(seen)) / static_cast<double>(buckets_[i]);
      return lo + frac * (hi - lo);
    }
    seen += buckets_[i];
  }
  return bounds_.empty() ? 0 : bounds_.back();
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.bounds = bounds_;
  MutexLock lock(mu_);
  snap.buckets = buckets_;
  snap.count = count_;
  snap.sum = sum_;
  return snap;
}

std::vector<double> DefaultLatencyBuckets() {
  std::vector<double> b;
  for (double v = 1e-5; v < 200.0; v *= 10) {
    b.push_back(v);
    b.push_back(2.5 * v);
    b.push_back(5 * v);
  }
  return b;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  MutexLock lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  MutexLock lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> upper_bounds) {
  MutexLock lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>(std::move(upper_bounds));
  return slot.get();
}

const Counter* MetricsRegistry::FindCounter(const std::string& name) const {
  MutexLock lock(mu_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : it->second.get();
}

const Gauge* MetricsRegistry::FindGauge(const std::string& name) const {
  MutexLock lock(mu_);
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : it->second.get();
}

const Histogram* MetricsRegistry::FindHistogram(const std::string& name) const {
  MutexLock lock(mu_);
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : it->second.get();
}

std::map<std::string, uint64_t> MetricsRegistry::CounterValues() const {
  MutexLock lock(mu_);
  std::map<std::string, uint64_t> out;
  for (const auto& [name, c] : counters_) out[name] = c->value();
  return out;
}

std::map<std::string, double> MetricsRegistry::GaugeValues() const {
  MutexLock lock(mu_);
  std::map<std::string, double> out;
  for (const auto& [name, g] : gauges_) out[name] = g->value();
  return out;
}

std::map<std::string, HistogramSnapshot> MetricsRegistry::HistogramValues()
    const {
  MutexLock lock(mu_);
  std::map<std::string, HistogramSnapshot> out;
  for (const auto& [name, h] : histograms_) out[name] = h->Snapshot();
  return out;
}

std::string MetricsRegistry::ToJson() const {
  MutexLock lock(mu_);
  JsonWriter w;
  w.BeginObject();
  w.Key("counters").BeginObject();
  for (const auto& [name, c] : counters_) w.Key(name).UInt(c->value());
  w.EndObject();
  w.Key("gauges").BeginObject();
  for (const auto& [name, g] : gauges_) w.Key(name).Double(g->value());
  w.EndObject();
  w.Key("histograms").BeginObject();
  for (const auto& [name, h] : histograms_) {
    w.Key(name).BeginObject();
    w.Key("count").UInt(h->count());
    w.Key("sum").Double(h->sum());
    w.Key("p50").Double(h->Quantile(0.5));
    w.Key("p99").Double(h->Quantile(0.99));
    w.Key("buckets").BeginArray();
    for (size_t i = 0; i < h->NumBuckets(); i++) {
      if (h->BucketCount(i) == 0) continue;
      w.BeginObject();
      w.Key("le");
      if (i < h->bounds().size()) {
        w.Double(h->bounds()[i]);
      } else {
        w.String("+Inf");
      }
      w.Key("count").UInt(h->BucketCount(i));
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
  }
  w.EndObject();
  w.EndObject();
  return std::move(w).str();
}

std::string MetricsRegistry::ToString() const {
  MutexLock lock(mu_);
  std::string out;
  char buf[64];
  for (const auto& [name, c] : counters_) {
    out += name + " = " + std::to_string(c->value()) + "\n";
  }
  for (const auto& [name, g] : gauges_) {
    std::snprintf(buf, sizeof(buf), "%g", g->value());
    out += name + " = " + buf + "\n";
  }
  for (const auto& [name, h] : histograms_) {
    std::snprintf(buf, sizeof(buf), "count=%llu sum=%g p50=%g p99=%g",
                  static_cast<unsigned long long>(h->count()), h->sum(),
                  h->Quantile(0.5), h->Quantile(0.99));
    out += name + " = " + buf + "\n";
  }
  return out;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry registry;
  return registry;
}

}  // namespace obs
}  // namespace elephant
