#pragma once

#include <string>

#include "obs/metrics.h"

namespace elephant {
namespace obs {

/// Rewrites an internal metric name ("db.pool.hits") into a legal Prometheus
/// metric name ("elephant_db_pool_hits"): the "elephant_" prefix is added
/// and every character outside [a-zA-Z0-9_:] becomes '_'.
std::string PrometheusName(const std::string& name);

/// Serializes a registry snapshot in the Prometheus text exposition format
/// (version 0.0.4): one `# TYPE` line per metric family, counters as
/// `_total`, histograms as cumulative `_bucket{le="..."}` series ending in
/// le="+Inf" plus `_sum`/`_count`. Families are emitted in sorted order with
/// no duplicate series, so the output passes a conformance check.
std::string ToPrometheusText(const MetricsRegistry& registry);

}  // namespace obs
}  // namespace elephant
