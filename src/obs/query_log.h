#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>

#include "common/thread_annotations.h"
#include "obs/wait_events.h"
#include "storage/disk_manager.h"

namespace elephant {
namespace obs {

/// FNV-1a 64-bit hash; used to fingerprint plans so the slow-query log can
/// group entries by plan shape without storing the whole plan tree.
uint64_t Fnv1a64(std::string_view data);

/// One finished statement as the audit log sees it.
struct QueryLogEntry {
  std::string sql;
  uint64_t plan_hash = 0;        ///< obs::PlanShapeHash of the rendered plan
  /// obs::FingerprintSql(sql): groups entries by statement *shape*, stable
  /// across plan changes (the same family re-plans as data grows), and the
  /// join key against elephant_stat_statements and EXPLAIN ANALYZE output.
  uint64_t sql_fingerprint = 0;
  double latency_seconds = 0;    ///< wall-clock execution time
  double io_seconds = 0;         ///< modeled disk time
  IoStats io;                    ///< physical page traffic
  uint64_t rows = 0;
  int session_id = -1;           ///< -1 = outside any session
  /// Where the statement's blocked time went (per wait class, plus the
  /// single hottest event) — serialized as the "wait_profile" JSON object.
  WaitProfile wait_profile;
};

/// Threshold-gated slow-query/audit log: statements whose wall-clock latency
/// meets the threshold are appended to a JSONL file (one self-contained JSON
/// object per line — statement, plan hash, latency, modeled I/O, session id)
/// the moment they finish, so the file is tail-able during a run. A
/// threshold of 0 audits every statement.
///
/// Disabled until Open() succeeds; Record() is a single relaxed atomic load
/// when disabled. Thread-safe: concurrent sessions append whole lines under
/// an internal mutex.
class QueryLog {
 public:
  QueryLog() = default;
  ~QueryLog();
  QueryLog(const QueryLog&) = delete;
  QueryLog& operator=(const QueryLog&) = delete;

  /// Starts logging statements with latency >= threshold to `path`
  /// (truncates any existing file). False when the file cannot be opened.
  bool Open(const std::string& path, double threshold_seconds);
  void Close();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  double threshold_seconds() const;

  /// Appends `entry` when the log is open and the latency meets the
  /// threshold.
  void Record(const QueryLogEntry& entry);

  /// Number of entries appended since Open() (for tests).
  uint64_t EntriesWritten() const;

 private:
  std::atomic<bool> enabled_{false};
  mutable Mutex mu_{LockRank::kQueryLog, "QueryLog::mu_"};
  std::FILE* file_ GUARDED_BY(mu_) = nullptr;
  double threshold_seconds_ GUARDED_BY(mu_) = 0;
  uint64_t entries_written_ GUARDED_BY(mu_) = 0;
};

}  // namespace obs
}  // namespace elephant
