#include "obs/trace.h"

#include <cstdio>

namespace elephant {
namespace obs {

double QueryTrace::SecondsFor(const std::string& name) const {
  for (const SpanRecord& s : spans) {
    if (s.name == name) return s.seconds;
  }
  return 0;
}

namespace {
std::string FormatMs(double seconds) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3fms", seconds * 1e3);
  return buf;
}
}  // namespace

std::string QueryTrace::ToString() const {
  std::string top;
  std::string nested;
  for (const SpanRecord& s : spans) {
    if (s.depth == 0) {
      if (!top.empty()) top += " | ";
      top += s.name + " " + FormatMs(s.seconds);
    } else {
      nested.append(static_cast<size_t>(s.depth) * 2, ' ');
      nested += s.name + " " + FormatMs(s.seconds) + "\n";
    }
  }
  return nested.empty() ? top : top + "\n" + nested;
}

void QueryTrace::AppendJson(JsonWriter* w) const {
  w->BeginArray();
  for (const SpanRecord& s : spans) {
    w->BeginObject();
    w->Key("name").String(s.name);
    w->Key("depth").Int(s.depth);
    w->Key("seconds").Double(s.seconds);
    w->EndObject();
  }
  w->EndArray();
}

void Tracer::Scope::End() {
  if (tracer_ == nullptr) return;
  Tracer* t = tracer_;
  tracer_ = nullptr;
  // A Finish() call may have retired this span already.
  if (t->epoch_ != epoch_ || !t->open_[index_]) return;
  const auto now = std::chrono::steady_clock::now();
  t->spans_[index_].seconds =
      std::chrono::duration<double>(now - t->starts_[index_]).count();
  t->open_[index_] = 0;
  t->open_depth_--;
}

Tracer::Scope Tracer::StartSpan(std::string name) {
  SpanRecord rec;
  rec.name = std::move(name);
  rec.depth = open_depth_;
  open_depth_++;
  spans_.push_back(std::move(rec));
  starts_.push_back(std::chrono::steady_clock::now());
  open_.push_back(1);
  return Scope(this, spans_.size() - 1, epoch_);
}

QueryTrace Tracer::Finish() {
  const auto now = std::chrono::steady_clock::now();
  for (size_t i = 0; i < spans_.size(); i++) {
    if (!open_[i]) continue;
    spans_[i].seconds = std::chrono::duration<double>(now - starts_[i]).count();
  }
  QueryTrace trace;
  trace.spans = std::move(spans_);
  spans_.clear();
  starts_.clear();
  open_.clear();
  open_depth_ = 0;
  epoch_++;
  return trace;
}

}  // namespace obs
}  // namespace elephant
