#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "obs/json.h"

namespace elephant {
namespace obs {

/// Monotonically increasing counter.
class Counter {
 public:
  void Increment(uint64_t delta = 1) { value_ += delta; }
  uint64_t value() const { return value_; }

 private:
  uint64_t value_ = 0;
};

/// Point-in-time value (last write wins).
class Gauge {
 public:
  void Set(double v) { value_ = v; }
  void Add(double delta) { value_ += delta; }
  double value() const { return value_; }

 private:
  double value_ = 0;
};

/// Fixed-bucket histogram. Bucket i counts observations with
/// `v <= bounds[i]`; one implicit overflow bucket catches the rest.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void Observe(double v);

  uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket (non-cumulative) count; index bounds().size() is overflow.
  uint64_t BucketCount(size_t i) const { return buckets_[i]; }
  size_t NumBuckets() const { return buckets_.size(); }

  /// Approximate quantile (q in [0,1]) assuming a uniform distribution
  /// within each bucket. The overflow bucket reports its lower bound.
  double Quantile(double q) const;

 private:
  std::vector<double> bounds_;    ///< ascending upper bounds
  std::vector<uint64_t> buckets_; ///< bounds_.size() + 1 entries
  uint64_t count_ = 0;
  double sum_ = 0;
};

/// Exponential latency buckets from 10us to ~100s.
std::vector<double> DefaultLatencyBuckets();

/// Named metric registry. Handles are stable for the registry's lifetime;
/// looking a name up again returns the same instrument (a histogram's bucket
/// bounds are fixed by the first registration). Single-threaded by design,
/// matching the engine.
class MetricsRegistry {
 public:
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name,
                          std::vector<double> upper_bounds = DefaultLatencyBuckets());

  /// Nullptr when the name is not registered (or is a different kind).
  const Counter* FindCounter(const std::string& name) const;
  const Gauge* FindGauge(const std::string& name) const;
  const Histogram* FindHistogram(const std::string& name) const;

  /// Snapshot of every instrument, keyed by name.
  std::string ToJson() const;
  /// Human-readable one-instrument-per-line dump.
  std::string ToString() const;

  /// Process-wide default registry.
  static MetricsRegistry& Global();

 private:
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace obs
}  // namespace elephant
