#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_annotations.h"
#include "obs/json.h"

namespace elephant {
namespace obs {

/// Monotonically increasing counter. Lock-free: safe to increment from any
/// thread (concurrent sessions all bump the same statement counters).
class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Point-in-time value (last write wins). Thread-safe; Add() uses a CAS loop
/// since atomic double addition predates this codebase's toolchain floor.
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double delta) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0};
};

/// Consistent copy of one histogram's state (one lock acquisition, unlike
/// reading count/sum/BucketCount piecemeal).
struct HistogramSnapshot {
  std::vector<double> bounds;     ///< ascending upper bounds
  std::vector<uint64_t> buckets;  ///< bounds.size() + 1 (overflow last)
  uint64_t count = 0;
  double sum = 0;
};

/// Fixed-bucket histogram. Bucket i counts observations with
/// `v <= bounds[i]`; one implicit overflow bucket catches the rest.
/// Observe and the readers synchronize on an internal mutex (observations
/// are rare — once per statement — so contention is negligible).
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void Observe(double v);

  uint64_t count() const {
    MutexLock lock(mu_);
    return count_;
  }
  double sum() const {
    MutexLock lock(mu_);
    return sum_;
  }
  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket (non-cumulative) count; index bounds().size() is overflow.
  uint64_t BucketCount(size_t i) const {
    MutexLock lock(mu_);
    return buckets_[i];
  }
  size_t NumBuckets() const { return buckets_.size(); }

  /// Approximate quantile (q in [0,1]) assuming a uniform distribution
  /// within each bucket. The overflow bucket reports its lower bound.
  double Quantile(double q) const;

  HistogramSnapshot Snapshot() const;

 private:
  mutable Mutex mu_{LockRank::kMetricsHistogram, "Histogram::mu_"};
  std::vector<double> bounds_;  ///< ascending upper bounds; immutable after
                                ///< the constructor, so reads skip the lock
  std::vector<uint64_t> buckets_ GUARDED_BY(mu_);  ///< bounds_.size() + 1 entries
  uint64_t count_ GUARDED_BY(mu_) = 0;
  double sum_ GUARDED_BY(mu_) = 0;
};

/// Exponential latency buckets from 10us to ~100s.
std::vector<double> DefaultLatencyBuckets();

/// Named metric registry. Handles are stable for the registry's lifetime;
/// looking a name up again returns the same instrument (a histogram's bucket
/// bounds are fixed by the first registration). Thread-safe: registration
/// and lookup take an internal mutex, and the instruments themselves are
/// individually thread-safe, so concurrent sessions can share one registry.
class MetricsRegistry {
 public:
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name,
                          std::vector<double> upper_bounds = DefaultLatencyBuckets());

  /// Nullptr when the name is not registered (or is a different kind).
  const Counter* FindCounter(const std::string& name) const;
  const Gauge* FindGauge(const std::string& name) const;
  const Histogram* FindHistogram(const std::string& name) const;

  /// Current values of every instrument of one kind, keyed by name —
  /// consistent snapshots for exporters (the Prometheus serializer walks
  /// these rather than holding the registry lock while formatting).
  std::map<std::string, uint64_t> CounterValues() const;
  std::map<std::string, double> GaugeValues() const;
  std::map<std::string, HistogramSnapshot> HistogramValues() const;

  /// Snapshot of every instrument, keyed by name.
  std::string ToJson() const;
  /// Human-readable one-instrument-per-line dump.
  std::string ToString() const;

  /// Process-wide default registry.
  static MetricsRegistry& Global();

 private:
  mutable Mutex mu_{LockRank::kMetricsRegistry, "MetricsRegistry::mu_"};
  std::map<std::string, std::unique_ptr<Counter>> counters_ GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_ GUARDED_BY(mu_);
};

}  // namespace obs
}  // namespace elephant
