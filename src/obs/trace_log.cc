#include "obs/trace_log.h"

#include <cstdio>

#include "obs/json.h"

namespace elephant {
namespace obs {

namespace {

thread_local int t_session_id = -1;
thread_local uint64_t t_current_span = 0;

uint32_t AssignThreadTrackId() {
  static std::atomic<uint32_t> next{0};
  return next.fetch_add(1, std::memory_order_relaxed) + 1;
}

void AppendEventJson(const TraceEvent& ev, JsonWriter* w) {
  w->BeginObject();
  w->Key("ph").String(std::string_view(&ev.ph, 1));
  w->Key("name").String(ev.name);
  w->Key("cat").String(*ev.cat == '\0' ? "misc" : ev.cat);
  w->Key("ts").Int(ev.ts_us);
  w->Key("pid").Int(ev.pid);
  w->Key("tid").UInt(ev.tid);
  if (ev.ph == 'i') w->Key("s").String("t");  // thread-scoped instant
  if (ev.ph == 'B' || ev.ph == 'i') {
    w->Key("args").BeginObject();
    if (ev.span_id != 0) w->Key("span_id").UInt(ev.span_id);
    if (ev.parent_id != 0) w->Key("parent_span_id").UInt(ev.parent_id);
    for (const auto& [k, v] : ev.args) w->Key(k).String(v);
    w->EndObject();
  }
  w->EndObject();
}

void AppendMetadataJson(const char* name, int32_t pid, uint32_t tid,
                        const char* arg_key, const std::string& arg_value,
                        JsonWriter* w) {
  w->BeginObject();
  w->Key("ph").String("M");
  w->Key("name").String(name);
  w->Key("pid").Int(pid);
  w->Key("tid").UInt(tid);
  w->Key("args").BeginObject().Key(arg_key).String(arg_value).EndObject();
  w->EndObject();
}

}  // namespace

TraceLog& TraceLog::Global() {
  static TraceLog log;
  return log;
}

uint32_t TraceLog::CurrentThreadTrackId() {
  thread_local uint32_t id = AssignThreadTrackId();
  return id;
}

void TraceLog::Clear() {
  MutexLock lock(mu_);
  events_.clear();
  dropped_ = 0;
}

void TraceLog::SetCapacity(size_t capacity) {
  MutexLock lock(mu_);
  capacity_ = capacity > 0 ? capacity : 1;
}

size_t TraceLog::capacity() const {
  MutexLock lock(mu_);
  return capacity_;
}

bool TraceLog::Emit(TraceEvent ev) {
  if (!enabled()) return false;
  if (ev.ts_us == 0) ev.ts_us = NowMicros();
  if (ev.tid == 0) ev.tid = CurrentThreadTrackId();
  if (ev.pid == 0) ev.pid = CurrentSessionId() + 1;
  MutexLock lock(mu_);
  // Admit 'E' past the cap so every recorded 'B' stays matched.
  if (events_.size() >= capacity_ && ev.ph != 'E') {
    dropped_++;
    return false;
  }
  events_.push_back(std::move(ev));
  return true;
}

void TraceLog::Instant(const char* name, const char* cat, TraceArgs args) {
  if (!enabled()) return;
  TraceEvent ev;
  ev.ph = 'i';
  ev.name = name;
  ev.cat = cat;
  ev.parent_id = CurrentSpanId();
  ev.args = std::move(args);
  Emit(std::move(ev));
}

void TraceLog::SetCurrentThreadName(const std::string& name) {
  MutexLock lock(mu_);
  thread_names_[CurrentThreadTrackId()] = name;
}

std::vector<TraceEvent> TraceLog::Snapshot() const {
  MutexLock lock(mu_);
  return events_;
}

size_t TraceLog::EventCount() const {
  MutexLock lock(mu_);
  return events_.size();
}

size_t TraceLog::DroppedCount() const {
  MutexLock lock(mu_);
  return dropped_;
}

std::string TraceLog::ToJson() const {
  MutexLock lock(mu_);
  JsonWriter w;
  w.BeginObject();
  w.Key("displayTimeUnit").String("ms");
  if (dropped_ > 0) w.Key("droppedEvents").UInt(dropped_);
  w.Key("traceEvents").BeginArray();
  // Process/thread metadata first: one process track per session (pid 0 is
  // engine work outside any session), one named thread track per thread.
  std::map<int32_t, bool> pids;
  std::map<std::pair<int32_t, uint32_t>, bool> tids;
  for (const TraceEvent& ev : events_) {
    pids[ev.pid] = true;
    tids[{ev.pid, ev.tid}] = true;
  }
  for (const auto& [pid, unused] : pids) {
    AppendMetadataJson("process_name", pid, 0, "name",
                       pid == 0 ? std::string("engine")
                                : "session " + std::to_string(pid - 1),
                       &w);
  }
  for (const auto& [key, unused] : tids) {
    const auto it = thread_names_.find(key.second);
    AppendMetadataJson("thread_name", key.first, key.second, "name",
                       it != thread_names_.end()
                           ? it->second
                           : "thread " + std::to_string(key.second),
                       &w);
  }
  for (const TraceEvent& ev : events_) AppendEventJson(ev, &w);
  w.EndArray();
  w.EndObject();
  return std::move(w).str();
}

bool TraceLog::WriteFile(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string doc = ToJson();
  const bool wrote = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size();
  return (std::fputc('\n', f) != EOF) & wrote & (std::fclose(f) == 0);
}

int CurrentSessionId() { return t_session_id; }

SessionIdScope::SessionIdScope(int session_id) : prev_(t_session_id) {
  t_session_id = session_id;
}

SessionIdScope::~SessionIdScope() { t_session_id = prev_; }

uint64_t CurrentSpanId() { return t_current_span; }

TraceParentScope::TraceParentScope(uint64_t parent_span_id)
    : prev_(t_current_span) {
  t_current_span = parent_span_id;
}

TraceParentScope::~TraceParentScope() { t_current_span = prev_; }

TraceSpan::TraceSpan(const char* name, const char* cat, TraceArgs args)
    : name_(name), cat_(cat) {
  TraceLog& log = TraceLog::Global();
  if (!log.enabled()) return;
  const uint64_t id = log.NextSpanId();
  TraceEvent ev;
  ev.ph = 'B';
  ev.name = name_;
  ev.cat = cat_;
  ev.span_id = id;
  ev.parent_id = t_current_span;
  ev.args = std::move(args);
  if (!log.Emit(std::move(ev))) return;  // dropped: stay inert, no 'E'
  id_ = id;
  prev_current_ = t_current_span;
  t_current_span = id_;
}

TraceSpan::~TraceSpan() {
  if (id_ == 0) return;
  t_current_span = prev_current_;
  TraceEvent ev;
  ev.ph = 'E';
  ev.name = name_;
  ev.cat = cat_;
  ev.span_id = id_;
  TraceLog::Global().Emit(std::move(ev));
}

}  // namespace obs
}  // namespace elephant
