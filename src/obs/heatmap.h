#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "common/thread_annotations.h"
#include "storage/disk_manager.h"

namespace elephant {
namespace obs {

/// Page-access counters for one storage object (a table's clustered index, a
/// secondary index, or a c-table — anything that owns pages).
struct ObjectIoStats {
  uint64_t pool_hits = 0;         ///< buffer-pool hits
  uint64_t pool_faults = 0;       ///< buffer-pool misses (each causes a read)
  uint64_t sequential_reads = 0;  ///< disk reads contiguous with a stream
  uint64_t random_reads = 0;      ///< disk reads paying a head seek
  uint64_t prefetch_hits = 0;     ///< sequential reads served from read-ahead
  uint64_t page_writes = 0;

  uint64_t TotalReads() const { return sequential_reads + random_reads; }

  /// Modeled disk time for this object's read traffic (same model the
  /// query-level io_seconds uses; writes are not modeled there either).
  double ModeledReadSeconds(const DiskModel& model) const {
    IoStats s;
    s.sequential_reads = sequential_reads;
    s.random_reads = random_reads;
    s.readahead.prefetch_hits = prefetch_hits;
    return model.Seconds(s);
  }

  void Add(const ObjectIoStats& o) {
    pool_hits += o.pool_hits;
    pool_faults += o.pool_faults;
    sequential_reads += o.sequential_reads;
    random_reads += o.random_reads;
    prefetch_hits += o.prefetch_hits;
    page_writes += o.page_writes;
  }
};

/// The access-attribution label for everything the calling thread is not
/// inside an AccessScope for.
const std::string& UnattributedLabel();

/// The label attached to the calling thread (UnattributedLabel() when none).
const std::string& CurrentAccessLabel();

/// RAII thread-local access attribution, the per-object analogue of IoScope:
/// storage objects (B+-trees, via their owning Table) install their label
/// around page accesses, and the heatmap hooks in DiskManager/BufferPool read
/// it at the access site. A null label leaves the current attribution
/// untouched (unlabeled trees inherit their caller's scope). Scopes nest and
/// restore on destruction.
class AccessScope {
 public:
  explicit AccessScope(const std::string* label);
  ~AccessScope();
  AccessScope(const AccessScope&) = delete;
  AccessScope& operator=(const AccessScope&) = delete;

 private:
  const std::string* prev_;
};

/// Engine-lifetime per-object page-access heatmap. The DiskManager and
/// BufferPool record every fault, hit, read (with its sequential/random
/// classification) and write under the same critical section that bumps
/// their global counters, attributed to CurrentAccessLabel() — so the
/// per-object totals sum EXACTLY to the global IoStats/BufferPoolStats, a
/// property tests enforce. Accesses outside any AccessScope land on
/// UnattributedLabel().
///
/// Thread-safe (one internal mutex, taken once per page access — same
/// granularity as the pool latch, so it adds no new contention point).
class AccessHeatmap {
 public:
  void RecordHit(const std::string& label);
  void RecordFault(const std::string& label);
  void RecordRead(const std::string& label, bool sequential,
                  bool prefetch_hit = false);
  void RecordWrite(const std::string& label);

  /// Copy of the per-object counters, keyed by label.
  std::map<std::string, ObjectIoStats> Snapshot() const;

  /// Sum over all objects (equals the global IoStats totals).
  ObjectIoStats Total() const;

  void Reset();

  /// {"objects": {label: {hits, faults, sequential_reads, ...}}, "total":
  /// {...}} with per-object modeled I/O milliseconds from `model`.
  std::string ToJson(const DiskModel& model) const;

  /// Aligned text table, one object per row, sorted by modeled I/O time.
  std::string ToString(const DiskModel& model) const;

 private:
  mutable Mutex mu_{LockRank::kHeatmap, "Heatmap::mu_"};
  std::map<std::string, ObjectIoStats> objects_ GUARDED_BY(mu_);
};

/// Per-object difference `after - before` of two Snapshot() results (objects
/// with no traffic in between are omitted) — how benches attribute one
/// strategy's I/O when the heatmap has been accumulating engine-lifetime.
std::map<std::string, ObjectIoStats> HeatmapDelta(
    const std::map<std::string, ObjectIoStats>& before,
    const std::map<std::string, ObjectIoStats>& after);

}  // namespace obs
}  // namespace elephant
