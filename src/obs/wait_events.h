#pragma once

// Wait-event accounting, PostgreSQL-style: every blocking point in the
// engine is classified into a (class, event) pair and timed through a
// thread-local WaitScope RAII. The taxonomy answers the question I/O
// attribution alone cannot: a query stalled on a table lock, the buffer-pool
// latch, or a WAL group flush looks identical to one burning CPU unless the
// *waits* are named and measured.
//
//   LWLock     contended acquires of ranked engine mutexes (try-then-block
//              in the Mutex wrapper: the uncontended fast path records
//              nothing, exactly like PostgreSQL's lightweight locks)
//   Lock       LockManager table S/X waits (heavyweight, deadline-bounded)
//   IO         DiskManager page read/write/sync (the simulated device;
//              device-mutex queueing is subsumed — iowait semantics)
//   WAL        group-flush commit waits at the LogManager flush entry
//   CondVar    generic condition waits + the ASH sampler's interval sleep
//   Scheduler  task-queue idle and TaskGroup gather waits
//
// Scopes are NESTING-INERT: the outermost WaitScope on a thread wins and
// nested scopes record nothing, so a WAL flush that syncs the disk under the
// log mutex counts once as WAL, not three times as WAL + IO + LWLock.
//
// Recording fans out to three sinks, all wait-free (relaxed atomics, no
// allocation, no locks — WaitScope runs inside Mutex::Lock itself):
//   - the process-wide WaitEventRegistry (cumulative counts + histograms),
//   - the per-query WaitSink attached to the thread (see WaitSinkScope;
//     TaskGroup propagates the query's sink to its workers),
//   - the session's SessionWaitState, so the ASH sampler observes
//     "waiting on <event>" while the wait is in progress.
//
// This header is included by common/thread_annotations.h (the Mutex/CondVar
// hooks), so it must not include it back: lock_rank.h and the standard
// library only.

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

#include "common/lock_rank.h"

namespace elephant {
namespace obs {

enum class WaitClass : uint8_t {
  kLWLock,
  kLock,
  kIO,
  kWAL,
  kCondVar,
  kScheduler,
};
inline constexpr int kNumWaitClasses = 6;

const char* WaitClassName(WaitClass c);

/// Every nameable blocking point in the engine. Kept dense (0..N-1) so the
/// registry and profiles are plain arrays indexed by event.
enum class WaitEventId : uint8_t {
  // LWLock: one event per ranked mutex family (contended acquires only).
  kLWLockSessionManager = 0,
  kLWLockTxnManager,
  kLWLockLockManager,
  kLWLockBufferPool,
  kLWLockLogManager,
  kLWLockDiskManager,
  kLWLockObservability,
  kLWLockOther,
  // Lock: heavyweight table locks.
  kLockTableShared,
  kLockTableExclusive,
  // IO: simulated-device operations.
  kIoDataFileRead,
  kIoDataFileWrite,
  kIoDataFileSync,
  // WAL: commit-path group flush.
  kWalFlush,
  // CondVar.
  kCondVarWait,
  kCondVarSamplerSleep,
  // Scheduler: morsel workers and gather points. Includes the pool/group
  // mutexes themselves — queue-handoff contention is scheduling overhead,
  // not a lock-discipline signal, so an uncontended PARALLEL query reports
  // zero LWLock waits by construction.
  kSchedulerMutex,
  kSchedulerWorkerIdle,
  kSchedulerGather,
};
inline constexpr int kNumWaitEvents = 19;

struct WaitEventInfo {
  WaitClass wait_class;
  const char* class_name;  ///< WaitClassName(wait_class), denormalized
  const char* event_name;
};

/// The taxonomy, indexed by WaitEventId. scripts/telemetry_check.py parses
/// this table textually (--wait-events), so keep each entry on one line in
/// the form {WaitClass::kX, "Class", "Event"},
inline constexpr WaitEventInfo kWaitEventInfos[kNumWaitEvents] = {
    {WaitClass::kLWLock, "LWLock", "SessionManager"},
    {WaitClass::kLWLock, "LWLock", "TxnManager"},
    {WaitClass::kLWLock, "LWLock", "LockManager"},
    {WaitClass::kLWLock, "LWLock", "BufferPool"},
    {WaitClass::kLWLock, "LWLock", "LogManager"},
    {WaitClass::kLWLock, "LWLock", "DiskManager"},
    {WaitClass::kLWLock, "LWLock", "Observability"},
    {WaitClass::kLWLock, "LWLock", "Other"},
    {WaitClass::kLock, "Lock", "TableShared"},
    {WaitClass::kLock, "Lock", "TableExclusive"},
    {WaitClass::kIO, "IO", "DataFileRead"},
    {WaitClass::kIO, "IO", "DataFileWrite"},
    {WaitClass::kIO, "IO", "DataFileSync"},
    {WaitClass::kWAL, "WAL", "Flush"},
    {WaitClass::kCondVar, "CondVar", "Wait"},
    {WaitClass::kCondVar, "CondVar", "SamplerSleep"},
    {WaitClass::kScheduler, "Scheduler", "Mutex"},
    {WaitClass::kScheduler, "Scheduler", "WorkerIdle"},
    {WaitClass::kScheduler, "Scheduler", "Gather"},
};

/// "Class:Event" rendering ("Lock:TableExclusive"), or "" out of range.
std::string WaitEventName(int event_index);

/// The LWLock event a contended acquire of a mutex with this rank records.
/// Scheduler-family ranks map into the Scheduler class instead (see the
/// taxonomy note above).
WaitEventId WaitEventForRank(LockRank rank);

/// Per-query (or per-statement) wait totals, the wait-side sibling of
/// IoStats: a plain value folded into QueryResult, the EXPLAIN ANALYZE
/// footer and the slow-query log.
struct WaitProfile {
  std::array<uint64_t, kNumWaitEvents> counts{};
  std::array<uint64_t, kNumWaitEvents> nanos{};

  void Add(WaitEventId event, uint64_t wait_nanos) {
    counts[static_cast<int>(event)]++;
    nanos[static_cast<int>(event)] += wait_nanos;
  }

  uint64_t ClassCount(WaitClass c) const;
  uint64_t ClassNanos(WaitClass c) const;
  double ClassSeconds(WaitClass c) const {
    return static_cast<double>(ClassNanos(c)) / 1e9;
  }
  uint64_t TotalNanos() const;
  uint64_t TotalCount() const;
  double TotalSeconds() const {
    return static_cast<double>(TotalNanos()) / 1e9;
  }

  /// Index of the event with the most accumulated time, -1 when no waits.
  int TopEvent() const;
  /// "Lock:TableExclusive", or "" when no waits were recorded.
  std::string TopEventName() const { return WaitEventName(TopEvent()); }

  /// One line for the EXPLAIN ANALYZE footer:
  /// "total=1.204ms lwlock=0.000ms lock=1.102ms io=0.072ms wal=0.030ms
  ///  condvar=0.000ms scheduler=0.000ms | top=Lock:TableExclusive"
  std::string ToString() const;
};

/// Per-query wait attribution sink, the wait-side sibling of IoSink: every
/// WaitScope on a thread with a sink attached adds its (event, nanos) there
/// in addition to the global registry. Counters are atomic so TaskGroup can
/// hand the *same* sink to its workers and their waits fold in while the
/// session thread still reads it.
struct WaitSink {
  std::array<std::atomic<uint64_t>, kNumWaitEvents> counts{};
  std::array<std::atomic<uint64_t>, kNumWaitEvents> nanos{};

  void Add(WaitEventId event, uint64_t wait_nanos) {
    const int i = static_cast<int>(event);
    counts[i].fetch_add(1, std::memory_order_relaxed);
    nanos[i].fetch_add(wait_nanos, std::memory_order_relaxed);
  }

  WaitProfile ToProfile() const;
};

/// The wait sink attached to the calling thread (nullptr when none).
WaitSink* CurrentWaitSink();

/// RAII scope attaching `sink` to the current thread, restoring the previous
/// attachment on destruction (nests like IoScope; nullptr detaches).
class WaitSinkScope {
 public:
  explicit WaitSinkScope(WaitSink* sink);
  ~WaitSinkScope();

  WaitSinkScope(const WaitSinkScope&) = delete;
  WaitSinkScope& operator=(const WaitSinkScope&) = delete;

 private:
  WaitSink* prev_;
};

/// What a live session is doing right now, as sampled by the ASH thread and
/// served by elephant_stat_activity. Matches PostgreSQL's pg_stat_activity
/// states, minus the network-protocol ones the engine does not have yet.
enum class SessionActivityState : uint8_t {
  kIdle = 0,       ///< registered, no statement in flight
  kRunning = 1,    ///< executing a statement, not blocked
  kWaiting = 2,    ///< inside a WaitScope (wait_event says which)
  kIdleInTxn = 3,  ///< between statements with an open transaction
};

const char* SessionActivityStateName(SessionActivityState s);

/// One live session's state, written with relaxed atomics by the owning
/// thread (Session::Execute and any WaitScope running on it) and read by the
/// ASH sampler and the stat tables without any lock.
struct SessionWaitState {
  std::atomic<int> session_id{-1};
  std::atomic<int> state{static_cast<int>(SessionActivityState::kIdle)};
  std::atomic<int> wait_event{-1};  ///< WaitEventId while kWaiting, else -1
  std::atomic<uint64_t> sql_fingerprint{0};
  std::atomic<int64_t> txn_id{-1};
  std::atomic<uint64_t> statements{0};
};

/// The session state attached to the calling thread (nullptr when none).
SessionWaitState* CurrentSessionWaitState();

/// RAII scope attaching a session's state to the current thread for the
/// duration of a statement, so WaitScopes flip it waiting/running. TaskGroup
/// does NOT propagate this to workers: the session is "waiting on gather"
/// while its morsels run, which is what the session thread reports.
class SessionWaitStateScope {
 public:
  explicit SessionWaitStateScope(SessionWaitState* state);
  ~SessionWaitStateScope();

  SessionWaitStateScope(const SessionWaitStateScope&) = delete;
  SessionWaitStateScope& operator=(const SessionWaitStateScope&) = delete;

 private:
  SessionWaitState* prev_;
};

/// Process-wide cumulative wait accounting: per-event counts, total nanos
/// and a log-scale latency histogram. Entirely wait-free (relaxed atomics)
/// because it is invoked from inside Mutex::Lock — it can never take a lock,
/// allocate, or re-enter itself.
class WaitEventRegistry {
 public:
  /// Histogram buckets: upper bounds 1µs·4^i for i=0..14 (≈268s), plus +Inf.
  static constexpr int kNumBuckets = 16;

  /// Upper bound of bucket `i` in seconds (+Inf for the last).
  static double BucketBoundSeconds(int i);

  void Record(WaitEventId event, uint64_t wait_nanos);

  uint64_t Count(WaitEventId event) const;
  uint64_t Nanos(WaitEventId event) const;
  uint64_t ClassCount(WaitClass c) const;
  uint64_t ClassNanos(WaitClass c) const;
  double ClassSeconds(WaitClass c) const {
    return static_cast<double>(ClassNanos(c)) / 1e9;
  }

  struct EventSnapshot {
    uint64_t count = 0;
    uint64_t nanos = 0;
    std::array<uint64_t, kNumBuckets> buckets{};
  };
  EventSnapshot Snapshot(WaitEventId event) const;

  /// Histogram quantile estimate in seconds (upper bound of the bucket the
  /// q-th wait falls in); 0 when the event never fired.
  double QuantileSeconds(WaitEventId event, double q) const;

  /// Everything as a WaitProfile (the stat table's data source).
  WaitProfile ToProfile() const;

  /// Prometheus exposition: two labeled counter families,
  /// elephant_wait_events_total{class,event} and
  /// elephant_wait_seconds_total{class,event}, every taxonomy entry emitted
  /// (zeros included) so dashboards see the full event space. Histograms are
  /// deliberately not exported as labeled series — they surface as
  /// p50/p95 columns in elephant_stat_wait_events instead.
  std::string ToPrometheus() const;

  /// Zeroes all counters (tests; racing recorders simply land in the fresh
  /// epoch).
  void Reset();

  static WaitEventRegistry& Global();

 private:
  struct PerEvent {
    std::atomic<uint64_t> count{0};
    std::atomic<uint64_t> nanos{0};
    std::array<std::atomic<uint64_t>, kNumBuckets> buckets{};
  };
  PerEvent events_[kNumWaitEvents];
};

/// RAII timer for one blocking point. The outermost scope on a thread is the
/// one that records (nested scopes are inert), fanning out to the global
/// registry, the thread's WaitSink, and the thread's SessionWaitState.
/// Finish() is idempotent and returns the recorded nanos (0 when inert) so
/// callers like LockManager can reconcile their own counters exactly.
class WaitScope {
 public:
  explicit WaitScope(WaitEventId event);
  ~WaitScope();

  WaitScope(const WaitScope&) = delete;
  WaitScope& operator=(const WaitScope&) = delete;

  uint64_t Finish();

 private:
  WaitEventId event_;
  bool active_ = false;
  bool finished_ = false;
  uint64_t start_nanos_ = 0;
  uint64_t recorded_nanos_ = 0;
  int prev_state_ = 0;  ///< session state to restore (active scopes only)
};

}  // namespace obs
}  // namespace elephant
