#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/thread_annotations.h"

namespace elephant {
namespace obs {

/// Extra string arguments attached to a trace event ({"sql": "...",
/// "page": "17"}). Keys must be literals or otherwise outlive the call.
using TraceArgs = std::vector<std::pair<const char*, std::string>>;

/// One Chrome-trace ("trace_event") record. `name` and `cat` must be string
/// literals (spans are named at fixed call sites), which keeps recording
/// allocation-free apart from the args vector.
struct TraceEvent {
  char ph = 'B';           ///< 'B' begin, 'E' end, 'i' instant
  const char* name = "";
  const char* cat = "";
  int64_t ts_us = 0;       ///< microseconds since the log was constructed
  int32_t pid = 0;         ///< Perfetto process track: 0 = engine, n = session n-1
  uint32_t tid = 0;        ///< Perfetto thread track: small per-thread id
  uint64_t span_id = 0;    ///< 0 on instants
  uint64_t parent_id = 0;  ///< owning span (0 = root), crosses threads
  TraceArgs args;
};

/// Engine-lifetime Chrome-trace/Perfetto event log. Every thread records
/// into one shared log: session statements, per-morsel worker tasks,
/// buffer-pool faults and simulated-disk seeks all land on their own
/// thread/process tracks, so `WriteFile()` output opens directly in
/// Perfetto (ui.perfetto.dev) or chrome://tracing.
///
/// Disabled by default: recording sites check `enabled()` (one relaxed
/// atomic load) before building any event, so the always-compiled hooks cost
/// nothing in production runs. Thread-safe; the event buffer is bounded
/// (kMaxEvents) and drops begin/instant events past the cap while always
/// admitting matching 'E' events, so captured spans stay balanced.
class TraceLog {
 public:
  /// Soft cap on buffered events; ~100 bytes each.
  static constexpr size_t kMaxEvents = 1u << 20;

  /// Process-wide log (one engine per process in every current deployment).
  static TraceLog& Global();

  void Enable() { enabled_.store(true, std::memory_order_relaxed); }
  void Disable() { enabled_.store(false, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Drops all buffered events (thread names are kept).
  void Clear();

  /// Shrinks (or restores) the event-buffer cap. Production code leaves the
  /// default kMaxEvents; tests shrink it so the balanced-drop path can be
  /// exercised without buffering a million events. 0 is clamped to 1.
  void SetCapacity(size_t capacity);
  size_t capacity() const;

  /// Appends one event, filling in ts/tid (and pid from the session scope)
  /// when the caller left them zero. Returns false when the event was
  /// dropped (log disabled or buffer full).
  bool Emit(TraceEvent ev);

  /// Records an instant event on the calling thread's track.
  void Instant(const char* name, const char* cat, TraceArgs args = {});

  /// Fresh unique span id (never 0).
  uint64_t NextSpanId() {
    return next_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  /// Names the calling thread's track in the exported trace.
  void SetCurrentThreadName(const std::string& name);

  std::vector<TraceEvent> Snapshot() const;
  size_t EventCount() const;
  size_t DroppedCount() const;

  /// The full trace document: {"traceEvents": [...], ...} with process/
  /// thread metadata records. Valid JSON (json.load / Perfetto accept it).
  std::string ToJson() const;

  /// Writes ToJson() to `path`; false on I/O failure.
  bool WriteFile(const std::string& path) const;

  /// Microseconds since this log was constructed (the trace timebase).
  int64_t NowMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now() - t0_)
        .count();
  }

  /// Small stable id for the calling thread (assigned on first use).
  static uint32_t CurrentThreadTrackId();

 private:
  std::atomic<bool> enabled_{false};
  std::atomic<uint64_t> next_id_{0};
  const std::chrono::steady_clock::time_point t0_ =
      std::chrono::steady_clock::now();
  mutable Mutex mu_{LockRank::kTraceLog, "TraceLog::mu_"};
  std::vector<TraceEvent> events_ GUARDED_BY(mu_);
  size_t capacity_ GUARDED_BY(mu_) = kMaxEvents;
  size_t dropped_ GUARDED_BY(mu_) = 0;
  std::map<uint32_t, std::string> thread_names_ GUARDED_BY(mu_);
};

/// The session id attached to the calling thread (-1 = engine work outside
/// any session). Trace events use it as their Perfetto process track, the
/// slow-query log stamps it into every entry.
int CurrentSessionId();

/// RAII thread-local session attribution; nests/restores like IoScope.
/// Installed by Session::Execute and propagated to worker threads by
/// sched::TaskGroup.
class SessionIdScope {
 public:
  explicit SessionIdScope(int session_id);
  ~SessionIdScope();
  SessionIdScope(const SessionIdScope&) = delete;
  SessionIdScope& operator=(const SessionIdScope&) = delete;

 private:
  int prev_;
};

/// The innermost open span on the calling thread (0 = none). Worker spans
/// nest under it; TaskGroup captures it at Submit() time so spans created on
/// pool threads link back to the owning query's span.
uint64_t CurrentSpanId();

/// RAII thread-local parent-span attribution for cross-thread nesting: a
/// pool task installs the submitting thread's span id as the local parent,
/// so spans opened on the worker carry the right parent_id.
class TraceParentScope {
 public:
  explicit TraceParentScope(uint64_t parent_span_id);
  ~TraceParentScope();
  TraceParentScope(const TraceParentScope&) = delete;
  TraceParentScope& operator=(const TraceParentScope&) = delete;

 private:
  uint64_t prev_;
};

/// RAII span: emits a 'B' event at construction and the matching 'E' at
/// destruction on the same thread track, maintaining the thread's
/// current-span chain for parent attribution. Inert (and allocation-free)
/// when the global log is disabled; hot paths with argument strings should
/// still gate on TraceLog::Global().enabled() to avoid building args.
class TraceSpan {
 public:
  TraceSpan(const char* name, const char* cat, TraceArgs args = {});
  ~TraceSpan();
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_;
  const char* cat_;
  uint64_t id_ = 0;  ///< 0 = inert (log disabled or event dropped)
  uint64_t prev_current_ = 0;
};

}  // namespace obs
}  // namespace elephant
