#pragma once

// Active session history: the live-session registry behind
// elephant_stat_activity plus the background sampler behind
// elephant_stat_ash.
//
// Sessions register a SessionWaitState slot for their lifetime (see
// engine/session.h); statements flip it running/idle/idle-in-txn and stamp
// the SQL fingerprint and txn id; WaitScopes flip it waiting-on-<event>
// while a wait is in progress (obs/wait_events.h). The sampler thread wakes
// every interval, snapshots every registered slot that is not plain idle,
// and appends the observations to a bounded ring — Oracle-ASH style history
// that joins against elephant_stat_statements by fingerprint.
//
// Locking: the registry mutex (kWaitSessionRegistry), the ring mutex
// (kAshRing) and the sampler lifecycle mutex (kAshSampler) are never held
// together — the loop acquires them strictly one at a time — and all three
// are observability leaves, so sampling can never invert against engine
// locks.

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"
#include "obs/wait_events.h"

namespace elephant {
namespace obs {

/// One observation of one session, either live (elephant_stat_activity) or
/// historical (an ASH ring entry).
struct SessionActivitySample {
  int session_id = -1;
  SessionActivityState state = SessionActivityState::kIdle;
  int wait_event = -1;  ///< WaitEventId while waiting, else -1
  uint64_t sql_fingerprint = 0;
  int64_t txn_id = -1;
  uint64_t statements = 0;
};

/// Owns the SessionWaitState slots of every live session of one Database.
/// Slots are registered for the session's lifetime and written by the
/// session's thread with relaxed atomics; Snapshot() reads them without
/// stopping anyone.
class SessionStateRegistry {
 public:
  /// Registers a slot for `session_id` and returns it (registry-owned; valid
  /// until Release). The slot starts idle.
  SessionWaitState* Acquire(int session_id);

  /// Removes the slot; the pointer is dead after this returns.
  void Release(SessionWaitState* state);

  /// Current state of every registered session, sorted by session id.
  std::vector<SessionActivitySample> Snapshot() const;

 private:
  mutable Mutex mu_{LockRank::kWaitSessionRegistry,
                    "SessionStateRegistry::mu_"};
  std::map<int, std::unique_ptr<SessionWaitState>> slots_ GUARDED_BY(mu_);
};

/// RAII session registration: Acquire in the constructor, Release in the
/// destructor. Owned by Session for its lifetime.
class ScopedSessionRegistration {
 public:
  ScopedSessionRegistration(SessionStateRegistry* registry, int session_id)
      : registry_(registry), state_(registry->Acquire(session_id)) {}
  ~ScopedSessionRegistration() { registry_->Release(state_); }

  ScopedSessionRegistration(const ScopedSessionRegistration&) = delete;
  ScopedSessionRegistration& operator=(const ScopedSessionRegistration&) =
      delete;

  SessionWaitState* state() { return state_; }

 private:
  SessionStateRegistry* registry_;
  SessionWaitState* state_;
};

/// Statement-scoped activity bookkeeping: marks the slot running (stamping
/// fingerprint + txn id), attaches it to the thread so WaitScopes flip it
/// waiting, and on destruction settles it to idle or idle-in-transaction.
class ScopedStatementActivity {
 public:
  ScopedStatementActivity(SessionWaitState* state, uint64_t sql_fingerprint,
                          int64_t txn_id);
  ~ScopedStatementActivity();

  ScopedStatementActivity(const ScopedStatementActivity&) = delete;
  ScopedStatementActivity& operator=(const ScopedStatementActivity&) = delete;

  /// The statement may have opened or closed a transaction; the destructor
  /// uses the latest value to pick idle vs idle-in-txn.
  void SetTxnId(int64_t txn_id) { txn_id_ = txn_id; }

 private:
  SessionWaitState* state_;
  SessionWaitStateScope attach_;
  int64_t txn_id_;
};

/// One row of the ASH ring.
struct AshSample {
  uint64_t seq = 0;            ///< monotonic sample number
  uint64_t steady_nanos = 0;   ///< steady-clock capture time
  SessionActivitySample session;
};

/// The background sampler: every `interval_seconds` it snapshots the
/// registry and appends every non-idle session to a bounded ring. Opt-in via
/// DatabaseOptions::ash_sampler_enabled.
class AshSampler {
 public:
  struct Options {
    double interval_seconds = 0.005;
    size_t ring_capacity = 4096;
  };

  AshSampler(const SessionStateRegistry* registry, Options options);
  ~AshSampler();  ///< stops the thread

  AshSampler(const AshSampler&) = delete;
  AshSampler& operator=(const AshSampler&) = delete;

  void Start();
  void Stop();

  /// Ring contents, oldest first.
  std::vector<AshSample> Snapshot() const;

  /// Total sampler wakeups since Start (includes ticks that found every
  /// session idle and recorded nothing).
  uint64_t ticks() const;

  const Options& options() const { return options_; }

 private:
  void Loop();

  const SessionStateRegistry* const registry_;
  const Options options_;

  Mutex mu_{LockRank::kAshSampler, "AshSampler::mu_"};
  CondVar cv_;
  bool started_ GUARDED_BY(mu_) = false;
  bool stop_ GUARDED_BY(mu_) = false;

  mutable Mutex ring_mu_{LockRank::kAshRing, "AshSampler::ring_mu_"};
  std::deque<AshSample> ring_ GUARDED_BY(ring_mu_);
  uint64_t next_seq_ GUARDED_BY(ring_mu_) = 0;
  uint64_t ticks_ GUARDED_BY(ring_mu_) = 0;

  std::thread thread_;
};

}  // namespace obs
}  // namespace elephant
