#pragma once

#include <memory>

#include "exec/executor.h"
#include "obs/plan_stats.h"

namespace elephant {
namespace obs {

/// Transparent Executor decorator: forwards Init()/Next() to the wrapped
/// operator while attributing wall time, row counts, buffer-pool hit/miss
/// deltas, and sequential/random page-read deltas to an OperatorStats slot.
/// The planner wraps every node of an instrumented plan, so the stats of a
/// node are inclusive of its subtree; RenderPlanTree/FlattenPlan subtract
/// children to report self-attributed numbers.
class InstrumentedExecutor final : public Executor {
 public:
  InstrumentedExecutor(ExecContext* ctx, ExecutorPtr child,
                       std::shared_ptr<OperatorStats> stats)
      : ctx_(ctx), child_(std::move(child)), stats_(std::move(stats)) {}

  Status Init() override;
  Result<bool> Next(Row* out) override;
  const Schema& OutputSchema() const override { return child_->OutputSchema(); }

 private:
  ExecContext* ctx_;
  ExecutorPtr child_;
  std::shared_ptr<OperatorStats> stats_;
};

}  // namespace obs
}  // namespace elephant
