#pragma once

#include <memory>

#include "exec/batch.h"
#include "exec/executor.h"
#include "obs/plan_stats.h"

namespace elephant {
namespace obs {

/// Transparent Executor decorator: forwards Init()/Next() to the wrapped
/// operator while attributing wall time, row counts, buffer-pool hit/miss
/// deltas, and sequential/random page-read deltas to an OperatorStats slot.
/// The planner wraps every node of an instrumented plan, so the stats of a
/// node are inclusive of its subtree; RenderPlanTree/FlattenPlan subtract
/// children to report self-attributed numbers.
class InstrumentedExecutor final : public Executor {
 public:
  InstrumentedExecutor(ExecContext* ctx, ExecutorPtr child,
                       std::shared_ptr<OperatorStats> stats)
      : ctx_(ctx), child_(std::move(child)), stats_(std::move(stats)) {}

  Status Init() override;
  Result<bool> Next(Row* out) override;
  const Schema& OutputSchema() const override { return child_->OutputSchema(); }

 private:
  ExecContext* ctx_;
  ExecutorPtr child_;
  std::shared_ptr<OperatorStats> stats_;
};

/// BatchExecutor decorator with the same contract as InstrumentedExecutor:
/// inclusive wall time and I/O deltas per Init()/NextBatch() call, `rows`
/// advanced by each emitted batch's live-row count. One NextBatch call is
/// one `next_calls` tick — per-operator CPU cost amortizes over the batch,
/// which is the point of the vectorized engine.
class InstrumentedBatchExecutor final : public BatchExecutor {
 public:
  InstrumentedBatchExecutor(ExecContext* ctx, BatchExecutorPtr child,
                            std::shared_ptr<OperatorStats> stats)
      : ctx_(ctx), child_(std::move(child)), stats_(std::move(stats)) {}

  Status Init() override;
  Result<bool> NextBatch(Batch* out) override;
  const Schema& OutputSchema() const override { return child_->OutputSchema(); }

 private:
  ExecContext* ctx_;
  BatchExecutorPtr child_;
  std::shared_ptr<OperatorStats> stats_;
};

}  // namespace obs
}  // namespace elephant
