#include "obs/wait_events.h"

#include <chrono>
#include <cstdio>

namespace elephant {
namespace obs {

namespace {

// Thread-attachment state. The in-wait flag implements outermost-wins
// nesting: a WaitScope constructed while another is timing on this thread is
// inert, so compound blocking points (WAL flush -> disk sync -> log mutex)
// count once under the outermost classification.
thread_local bool t_in_wait = false;
thread_local WaitSink* t_wait_sink = nullptr;
thread_local SessionWaitState* t_session_state = nullptr;

uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::string FormatSeconds(double nanos) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3fms", nanos / 1e6);
  return buf;
}

}  // namespace

const char* WaitClassName(WaitClass c) {
  switch (c) {
    case WaitClass::kLWLock:
      return "LWLock";
    case WaitClass::kLock:
      return "Lock";
    case WaitClass::kIO:
      return "IO";
    case WaitClass::kWAL:
      return "WAL";
    case WaitClass::kCondVar:
      return "CondVar";
    case WaitClass::kScheduler:
      return "Scheduler";
  }
  return "Unknown";
}

std::string WaitEventName(int event_index) {
  if (event_index < 0 || event_index >= kNumWaitEvents) return "";
  const WaitEventInfo& info = kWaitEventInfos[event_index];
  return std::string(info.class_name) + ":" + info.event_name;
}

WaitEventId WaitEventForRank(LockRank rank) {
  switch (rank) {
    case LockRank::kSessionManager:
      return WaitEventId::kLWLockSessionManager;
    case LockRank::kScheduler:
    case LockRank::kTaskGroup:
      // Queue-handoff contention is scheduling overhead, not lock
      // discipline: see the taxonomy note in the header.
      return WaitEventId::kSchedulerMutex;
    case LockRank::kTxnManager:
      return WaitEventId::kLWLockTxnManager;
    case LockRank::kTxnLockManager:
      return WaitEventId::kLWLockLockManager;
    case LockRank::kBufferPool:
      return WaitEventId::kLWLockBufferPool;
    case LockRank::kLogManager:
      return WaitEventId::kLWLockLogManager;
    case LockRank::kDiskManager:
      return WaitEventId::kLWLockDiskManager;
    default:
      break;
  }
  // Observability leaves all rank 700+; everything else (catalog, table
  // heaps, fault injector, unranked) folds into Other.
  return static_cast<int>(rank) >= 700 ? WaitEventId::kLWLockObservability
                                       : WaitEventId::kLWLockOther;
}

uint64_t WaitProfile::ClassCount(WaitClass c) const {
  uint64_t total = 0;
  for (int i = 0; i < kNumWaitEvents; i++) {
    if (kWaitEventInfos[i].wait_class == c) total += counts[i];
  }
  return total;
}

uint64_t WaitProfile::ClassNanos(WaitClass c) const {
  uint64_t total = 0;
  for (int i = 0; i < kNumWaitEvents; i++) {
    if (kWaitEventInfos[i].wait_class == c) total += nanos[i];
  }
  return total;
}

uint64_t WaitProfile::TotalNanos() const {
  uint64_t total = 0;
  for (int i = 0; i < kNumWaitEvents; i++) total += nanos[i];
  return total;
}

uint64_t WaitProfile::TotalCount() const {
  uint64_t total = 0;
  for (int i = 0; i < kNumWaitEvents; i++) total += counts[i];
  return total;
}

int WaitProfile::TopEvent() const {
  int top = -1;
  uint64_t top_nanos = 0;
  for (int i = 0; i < kNumWaitEvents; i++) {
    if (nanos[i] > top_nanos || (nanos[i] > 0 && top < 0)) {
      top = i;
      top_nanos = nanos[i];
    }
  }
  return top;
}

std::string WaitProfile::ToString() const {
  std::string out = "total=" + FormatSeconds(static_cast<double>(TotalNanos()));
  static constexpr struct {
    WaitClass c;
    const char* label;
  } kOrder[] = {
      {WaitClass::kLWLock, "lwlock"},   {WaitClass::kLock, "lock"},
      {WaitClass::kIO, "io"},           {WaitClass::kWAL, "wal"},
      {WaitClass::kCondVar, "condvar"}, {WaitClass::kScheduler, "scheduler"},
  };
  for (const auto& entry : kOrder) {
    out += std::string(" ") + entry.label + "=" +
           FormatSeconds(static_cast<double>(ClassNanos(entry.c)));
  }
  const std::string top = TopEventName();
  if (!top.empty()) out += " | top=" + top;
  return out;
}

WaitProfile WaitSink::ToProfile() const {
  WaitProfile p;
  for (int i = 0; i < kNumWaitEvents; i++) {
    p.counts[i] = counts[i].load(std::memory_order_relaxed);
    p.nanos[i] = nanos[i].load(std::memory_order_relaxed);
  }
  return p;
}

WaitSink* CurrentWaitSink() { return t_wait_sink; }

WaitSinkScope::WaitSinkScope(WaitSink* sink) : prev_(t_wait_sink) {
  t_wait_sink = sink;
}

WaitSinkScope::~WaitSinkScope() { t_wait_sink = prev_; }

const char* SessionActivityStateName(SessionActivityState s) {
  switch (s) {
    case SessionActivityState::kIdle:
      return "idle";
    case SessionActivityState::kRunning:
      return "running";
    case SessionActivityState::kWaiting:
      return "waiting";
    case SessionActivityState::kIdleInTxn:
      return "idle in transaction";
  }
  return "unknown";
}

SessionWaitState* CurrentSessionWaitState() { return t_session_state; }

SessionWaitStateScope::SessionWaitStateScope(SessionWaitState* state)
    : prev_(t_session_state) {
  t_session_state = state;
}

SessionWaitStateScope::~SessionWaitStateScope() { t_session_state = prev_; }

double WaitEventRegistry::BucketBoundSeconds(int i) {
  if (i >= kNumBuckets - 1) return 1e300;  // +Inf bucket
  double bound = 1e-6;
  for (int k = 0; k < i; k++) bound *= 4;
  return bound;
}

namespace {

int BucketFor(uint64_t wait_nanos) {
  uint64_t bound = 1000;  // 1µs in nanos
  for (int i = 0; i < WaitEventRegistry::kNumBuckets - 1; i++) {
    if (wait_nanos <= bound) return i;
    bound *= 4;
  }
  return WaitEventRegistry::kNumBuckets - 1;
}

}  // namespace

void WaitEventRegistry::Record(WaitEventId event, uint64_t wait_nanos) {
  PerEvent& e = events_[static_cast<int>(event)];
  e.count.fetch_add(1, std::memory_order_relaxed);
  e.nanos.fetch_add(wait_nanos, std::memory_order_relaxed);
  e.buckets[BucketFor(wait_nanos)].fetch_add(1, std::memory_order_relaxed);
}

uint64_t WaitEventRegistry::Count(WaitEventId event) const {
  return events_[static_cast<int>(event)].count.load(
      std::memory_order_relaxed);
}

uint64_t WaitEventRegistry::Nanos(WaitEventId event) const {
  return events_[static_cast<int>(event)].nanos.load(
      std::memory_order_relaxed);
}

uint64_t WaitEventRegistry::ClassCount(WaitClass c) const {
  uint64_t total = 0;
  for (int i = 0; i < kNumWaitEvents; i++) {
    if (kWaitEventInfos[i].wait_class == c) {
      total += events_[i].count.load(std::memory_order_relaxed);
    }
  }
  return total;
}

uint64_t WaitEventRegistry::ClassNanos(WaitClass c) const {
  uint64_t total = 0;
  for (int i = 0; i < kNumWaitEvents; i++) {
    if (kWaitEventInfos[i].wait_class == c) {
      total += events_[i].nanos.load(std::memory_order_relaxed);
    }
  }
  return total;
}

WaitEventRegistry::EventSnapshot WaitEventRegistry::Snapshot(
    WaitEventId event) const {
  const PerEvent& e = events_[static_cast<int>(event)];
  EventSnapshot snap;
  snap.count = e.count.load(std::memory_order_relaxed);
  snap.nanos = e.nanos.load(std::memory_order_relaxed);
  for (int i = 0; i < kNumBuckets; i++) {
    snap.buckets[i] = e.buckets[i].load(std::memory_order_relaxed);
  }
  return snap;
}

double WaitEventRegistry::QuantileSeconds(WaitEventId event, double q) const {
  const EventSnapshot snap = Snapshot(event);
  if (snap.count == 0) return 0;
  const double target = q * static_cast<double>(snap.count);
  uint64_t cumulative = 0;
  for (int i = 0; i < kNumBuckets; i++) {
    cumulative += snap.buckets[i];
    if (static_cast<double>(cumulative) >= target) {
      return BucketBoundSeconds(i);
    }
  }
  return BucketBoundSeconds(kNumBuckets - 1);
}

WaitProfile WaitEventRegistry::ToProfile() const {
  WaitProfile p;
  for (int i = 0; i < kNumWaitEvents; i++) {
    p.counts[i] = events_[i].count.load(std::memory_order_relaxed);
    p.nanos[i] = events_[i].nanos.load(std::memory_order_relaxed);
  }
  return p;
}

std::string WaitEventRegistry::ToPrometheus() const {
  std::string out = "# TYPE elephant_wait_events_total counter\n";
  for (int i = 0; i < kNumWaitEvents; i++) {
    const WaitEventInfo& info = kWaitEventInfos[i];
    out += std::string("elephant_wait_events_total{class=\"") +
           info.class_name + "\",event=\"" + info.event_name + "\"} " +
           std::to_string(events_[i].count.load(std::memory_order_relaxed)) +
           "\n";
  }
  out += "# TYPE elephant_wait_seconds_total counter\n";
  for (int i = 0; i < kNumWaitEvents; i++) {
    const WaitEventInfo& info = kWaitEventInfos[i];
    char buf[64];
    std::snprintf(
        buf, sizeof(buf), "%.9f",
        static_cast<double>(events_[i].nanos.load(std::memory_order_relaxed)) /
            1e9);
    out += std::string("elephant_wait_seconds_total{class=\"") +
           info.class_name + "\",event=\"" + info.event_name + "\"} " + buf +
           "\n";
  }
  return out;
}

void WaitEventRegistry::Reset() {
  for (int i = 0; i < kNumWaitEvents; i++) {
    events_[i].count.store(0, std::memory_order_relaxed);
    events_[i].nanos.store(0, std::memory_order_relaxed);
    for (int b = 0; b < kNumBuckets; b++) {
      events_[i].buckets[b].store(0, std::memory_order_relaxed);
    }
  }
}

WaitEventRegistry& WaitEventRegistry::Global() {
  static WaitEventRegistry registry;
  return registry;
}

WaitScope::WaitScope(WaitEventId event) : event_(event) {
  if (t_in_wait) return;  // nested: the outermost scope records
  t_in_wait = true;
  active_ = true;
  start_nanos_ = NowNanos();
  SessionWaitState* session = t_session_state;
  if (session != nullptr) {
    prev_state_ = session->state.load(std::memory_order_relaxed);
    session->wait_event.store(static_cast<int>(event_),
                              std::memory_order_relaxed);
    session->state.store(static_cast<int>(SessionActivityState::kWaiting),
                         std::memory_order_relaxed);
  }
}

WaitScope::~WaitScope() { Finish(); }

uint64_t WaitScope::Finish() {
  if (!active_ || finished_) return recorded_nanos_;
  finished_ = true;
  const uint64_t end = NowNanos();
  recorded_nanos_ = end > start_nanos_ ? end - start_nanos_ : 0;
  WaitEventRegistry::Global().Record(event_, recorded_nanos_);
  if (t_wait_sink != nullptr) t_wait_sink->Add(event_, recorded_nanos_);
  SessionWaitState* session = t_session_state;
  if (session != nullptr) {
    session->state.store(prev_state_, std::memory_order_relaxed);
    session->wait_event.store(-1, std::memory_order_relaxed);
  }
  t_in_wait = false;
  return recorded_nanos_;
}

}  // namespace obs
}  // namespace elephant
