#include "obs/plan_stats.h"

#include <cstdio>

namespace elephant {
namespace obs {

namespace {

uint64_t SatSub(uint64_t a, uint64_t b) { return a > b ? a - b : 0; }

/// Inclusive-minus-children: what this operator did itself.
OperatorBreakdown SelfOf(const PlanNode& n, int depth) {
  OperatorBreakdown b;
  const size_t eol = n.label.find('\n');
  b.op = eol == std::string::npos ? n.label : n.label.substr(0, eol);
  b.depth = depth;
  b.est_rows = n.est_rows;
  if (n.stats == nullptr) return b;
  const OperatorStats& s = *n.stats;
  b.rows = s.rows;
  b.next_calls = s.next_calls;
  OperatorStats kids;
  for (const auto& kid : n.children) {
    if (kid->stats == nullptr) continue;
    kids.seconds += kid->stats->seconds;
    kids.io.sequential_reads += kid->stats->io.sequential_reads;
    kids.io.random_reads += kid->stats->io.random_reads;
    kids.io.page_writes += kid->stats->io.page_writes;
    kids.pool_hits += kid->stats->pool_hits;
    kids.pool_misses += kid->stats->pool_misses;
  }
  b.seconds = s.seconds > kids.seconds ? s.seconds - kids.seconds : 0;
  b.seq_reads = SatSub(s.io.sequential_reads, kids.io.sequential_reads);
  b.rand_reads = SatSub(s.io.random_reads, kids.io.random_reads);
  b.page_writes = SatSub(s.io.page_writes, kids.io.page_writes);
  b.pool_hits = SatSub(s.pool_hits, kids.pool_hits);
  b.pool_misses = SatSub(s.pool_misses, kids.pool_misses);
  return b;
}

std::string FormatMs(double seconds) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3fms", seconds * 1e3);
  return buf;
}

std::string Annotations(const PlanNode& n, bool with_actuals, int depth) {
  std::string out;
  char buf[128];
  if (n.est_rows >= 0) {
    std::snprintf(buf, sizeof(buf), "  [est_rows=%.0f cost=%.0f]", n.est_rows,
                  n.est_cost < 0 ? 0.0 : n.est_cost);
    out += buf;
  }
  if (with_actuals && n.stats != nullptr) {
    const OperatorBreakdown self = SelfOf(n, depth);
    std::snprintf(buf, sizeof(buf),
                  "  (actual rows=%llu nexts=%llu time=%s io_seq=%llu "
                  "io_rand=%llu pool_miss=%llu)",
                  static_cast<unsigned long long>(n.stats->rows),
                  static_cast<unsigned long long>(n.stats->next_calls),
                  FormatMs(n.stats->seconds).c_str(),
                  static_cast<unsigned long long>(self.seq_reads),
                  static_cast<unsigned long long>(self.rand_reads),
                  static_cast<unsigned long long>(self.pool_misses));
    out += buf;
  }
  return out;
}

void Render(const PlanNode& n, int depth, bool with_actuals, std::string* out) {
  // Multi-line labels keep their own content; annotations attach to the
  // first line. Every line indents to this node's depth.
  const std::string annot = Annotations(n, with_actuals, depth);
  size_t start = 0;
  bool first = true;
  while (start <= n.label.size()) {
    size_t end = n.label.find('\n', start);
    if (end == std::string::npos) end = n.label.size();
    out->append(static_cast<size_t>(depth) * 2, ' ');
    if (first) out->append("-> ");
    out->append(n.label, start, end - start);
    if (first) out->append(annot);
    out->push_back('\n');
    first = false;
    if (end == n.label.size()) break;
    start = end + 1;
  }
  for (const auto& kid : n.children) Render(*kid, depth + 1, with_actuals, out);
}

void Flatten(const PlanNode& n, int depth, std::vector<OperatorBreakdown>* out) {
  out->push_back(SelfOf(n, depth));
  for (const auto& kid : n.children) Flatten(*kid, depth + 1, out);
}

}  // namespace

std::string RenderPlanTree(const PlanNode& root, bool with_actuals) {
  std::string out;
  Render(root, 0, with_actuals, &out);
  return out;
}

std::vector<OperatorBreakdown> FlattenPlan(const PlanNode& root) {
  std::vector<OperatorBreakdown> out;
  Flatten(root, 0, &out);
  return out;
}

void AppendPlanJson(const PlanNode& root, bool with_actuals, JsonWriter* w) {
  w->BeginObject();
  w->Key("op").String(root.label);
  if (root.est_rows >= 0) {
    w->Key("est_rows").Double(root.est_rows);
    w->Key("est_cost").Double(root.est_cost < 0 ? 0 : root.est_cost);
  }
  if (with_actuals && root.stats != nullptr) {
    const OperatorBreakdown self = SelfOf(root, 0);
    w->Key("actual").BeginObject();
    w->Key("rows").UInt(root.stats->rows);
    w->Key("next_calls").UInt(root.stats->next_calls);
    w->Key("seconds").Double(root.stats->seconds);
    w->Key("self_seconds").Double(self.seconds);
    w->Key("self_seq_reads").UInt(self.seq_reads);
    w->Key("self_rand_reads").UInt(self.rand_reads);
    w->Key("self_page_writes").UInt(self.page_writes);
    w->Key("self_pool_hits").UInt(self.pool_hits);
    w->Key("self_pool_misses").UInt(self.pool_misses);
    w->EndObject();
  }
  if (!root.children.empty()) {
    w->Key("children").BeginArray();
    for (const auto& kid : root.children) AppendPlanJson(*kid, with_actuals, w);
    w->EndArray();
  }
  w->EndObject();
}

}  // namespace obs
}  // namespace elephant
