#include "obs/ash.h"

#include <chrono>
#include <utility>

namespace elephant {
namespace obs {

namespace {

uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

SessionActivitySample ReadSlot(int session_id, const SessionWaitState& slot) {
  SessionActivitySample s;
  s.session_id = session_id;
  s.state = static_cast<SessionActivityState>(
      slot.state.load(std::memory_order_relaxed));
  s.wait_event = slot.wait_event.load(std::memory_order_relaxed);
  s.sql_fingerprint = slot.sql_fingerprint.load(std::memory_order_relaxed);
  s.txn_id = slot.txn_id.load(std::memory_order_relaxed);
  s.statements = slot.statements.load(std::memory_order_relaxed);
  return s;
}

}  // namespace

SessionWaitState* SessionStateRegistry::Acquire(int session_id) {
  MutexLock lock(mu_);
  auto slot = std::make_unique<SessionWaitState>();
  slot->session_id.store(session_id, std::memory_order_relaxed);
  SessionWaitState* raw = slot.get();
  // Session ids are unique per SessionManager but two managers over one
  // Database may reuse them; key by slot address-equivalent insertion order
  // instead of clobbering: keep the first key free by probing upward.
  int key = session_id;
  while (slots_.count(key) > 0) key += 1 << 16;
  slots_[key] = std::move(slot);
  return raw;
}

void SessionStateRegistry::Release(SessionWaitState* state) {
  MutexLock lock(mu_);
  for (auto it = slots_.begin(); it != slots_.end(); ++it) {
    if (it->second.get() == state) {
      slots_.erase(it);
      return;
    }
  }
}

std::vector<SessionActivitySample> SessionStateRegistry::Snapshot() const {
  MutexLock lock(mu_);
  std::vector<SessionActivitySample> out;
  out.reserve(slots_.size());
  for (const auto& [key, slot] : slots_) {
    out.push_back(
        ReadSlot(slot->session_id.load(std::memory_order_relaxed), *slot));
  }
  return out;
}

ScopedStatementActivity::ScopedStatementActivity(SessionWaitState* state,
                                                 uint64_t sql_fingerprint,
                                                 int64_t txn_id)
    : state_(state), attach_(state), txn_id_(txn_id) {
  if (state_ == nullptr) return;
  state_->sql_fingerprint.store(sql_fingerprint, std::memory_order_relaxed);
  state_->txn_id.store(txn_id, std::memory_order_relaxed);
  state_->statements.fetch_add(1, std::memory_order_relaxed);
  state_->state.store(static_cast<int>(SessionActivityState::kRunning),
                      std::memory_order_relaxed);
}

ScopedStatementActivity::~ScopedStatementActivity() {
  if (state_ == nullptr) return;
  state_->txn_id.store(txn_id_, std::memory_order_relaxed);
  const SessionActivityState idle = txn_id_ >= 0
                                        ? SessionActivityState::kIdleInTxn
                                        : SessionActivityState::kIdle;
  state_->state.store(static_cast<int>(idle), std::memory_order_relaxed);
}

AshSampler::AshSampler(const SessionStateRegistry* registry, Options options)
    : registry_(registry), options_(options) {}

AshSampler::~AshSampler() { Stop(); }

void AshSampler::Start() {
  MutexLock lock(mu_);
  if (started_) return;
  started_ = true;
  stop_ = false;
  thread_ = std::thread([this] { Loop(); });
}

void AshSampler::Stop() {
  {
    MutexLock lock(mu_);
    if (!started_) return;
    stop_ = true;
    cv_.NotifyAll();
  }
  thread_.join();
  MutexLock lock(mu_);
  started_ = false;
}

std::vector<AshSample> AshSampler::Snapshot() const {
  MutexLock lock(ring_mu_);
  return std::vector<AshSample>(ring_.begin(), ring_.end());
}

uint64_t AshSampler::ticks() const {
  MutexLock lock(ring_mu_);
  return ticks_;
}

void AshSampler::Loop() {
  for (;;) {
    {
      MutexLock lock(mu_);
      if (stop_) return;
      {
        // The sampler's own sleep is a named wait event so its condvar
        // traffic is distinguishable from engine waits in the registry.
        WaitScope sleep_scope(WaitEventId::kCondVarSamplerSleep);
        cv_.WaitFor(mu_, options_.interval_seconds);
      }
      if (stop_) return;
    }
    // Registry then ring, never nested (both are leaves; see header).
    std::vector<SessionActivitySample> sessions = registry_->Snapshot();
    const uint64_t now = NowNanos();
    MutexLock lock(ring_mu_);
    ticks_++;
    for (const SessionActivitySample& s : sessions) {
      if (s.state == SessionActivityState::kIdle) continue;
      AshSample sample;
      sample.seq = next_seq_++;
      sample.steady_nanos = now;
      sample.session = s;
      ring_.push_back(sample);
      while (ring_.size() > options_.ring_capacity) ring_.pop_front();
    }
  }
}

}  // namespace obs
}  // namespace elephant
