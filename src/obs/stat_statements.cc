#include "obs/stat_statements.h"

#include <algorithm>
#include <cctype>
#include <cstdio>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/query_log.h"

namespace elephant {
namespace obs {

namespace {

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

void AddIo(IoStats* a, const IoStats& b) {
  a->sequential_reads += b.sequential_reads;
  a->random_reads += b.random_reads;
  a->page_writes += b.page_writes;
  a->readahead.windows_issued += b.readahead.windows_issued;
  a->readahead.pages_prefetched += b.readahead.pages_prefetched;
  a->readahead.prefetch_hits += b.readahead.prefetch_hits;
  a->readahead.prefetch_wasted += b.readahead.prefetch_wasted;
}

void AppendIoJson(const IoStats& io, JsonWriter* w) {
  w->BeginObject();
  w->Key("sequential_reads").UInt(io.sequential_reads);
  w->Key("random_reads").UInt(io.random_reads);
  w->Key("page_writes").UInt(io.page_writes);
  w->Key("readahead").BeginObject();
  w->Key("windows_issued").UInt(io.readahead.windows_issued);
  w->Key("pages_prefetched").UInt(io.readahead.pages_prefetched);
  w->Key("prefetch_hits").UInt(io.readahead.prefetch_hits);
  w->Key("prefetch_wasted").UInt(io.readahead.prefetch_wasted);
  w->EndObject();
  w->EndObject();
}

}  // namespace

std::string NormalizeSql(std::string_view sql) {
  std::string out;
  out.reserve(sql.size());
  bool pending_space = false;
  auto emit = [&out, &pending_space](char c) {
    if (pending_space && !out.empty()) out.push_back(' ');
    pending_space = false;
    out.push_back(c);
  };
  size_t i = 0;
  while (i < sql.size()) {
    const char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      pending_space = true;
      i++;
      continue;
    }
    if (c == '\'') {
      // String literal ('' escapes a quote): the whole token becomes `?`.
      i++;
      while (i < sql.size()) {
        if (sql[i] == '\'') {
          if (i + 1 < sql.size() && sql[i + 1] == '\'') {
            i += 2;
            continue;
          }
          i++;
          break;
        }
        i++;
      }
      emit('?');
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) != 0 &&
        (out.empty() || !IsIdentChar(out.back()))) {
      // Numeric literal (digits with embedded dots); digits inside an
      // identifier like `col2` stay part of the identifier.
      while (i < sql.size() &&
             (std::isdigit(static_cast<unsigned char>(sql[i])) != 0 ||
              sql[i] == '.')) {
        i++;
      }
      emit('?');
      continue;
    }
    emit(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    i++;
  }
  return out;
}

uint64_t FingerprintSql(std::string_view sql) {
  return Fnv1a64(NormalizeSql(sql));
}

uint64_t PlanShapeHash(std::string_view plan_text) {
  return Fnv1a64(NormalizeSql(plan_text));
}

std::string HexHash(uint64_t value) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(value));
  return buf;
}

std::string OperatorClassOf(std::string_view label) {
  size_t end = 0;
  while (end < label.size() && label[end] != ' ' && label[end] != '\n') end++;
  return std::string(label.substr(0, end));
}

double StatementStats::QuantileSeconds(double q) const {
  const std::vector<double>& bounds = StatStatements::LatencyBounds();
  if (calls == 0 || latency_buckets.empty()) return 0;
  const double target = q * static_cast<double>(calls);
  uint64_t seen = 0;
  for (size_t i = 0; i < latency_buckets.size(); i++) {
    const uint64_t in_bucket = latency_buckets[i];
    if (in_bucket == 0) continue;
    if (static_cast<double>(seen + in_bucket) >= target) {
      if (i >= bounds.size()) return bounds.empty() ? 0 : bounds.back();
      const double lo = i == 0 ? 0 : bounds[i - 1];
      const double hi = bounds[i];
      const double frac =
          (target - static_cast<double>(seen)) / static_cast<double>(in_bucket);
      return lo + (hi - lo) * std::min(1.0, std::max(0.0, frac));
    }
    seen += in_bucket;
  }
  return bounds.empty() ? 0 : bounds.back();
}

const std::vector<double>& StatStatements::LatencyBounds() {
  static const std::vector<double> bounds = DefaultLatencyBuckets();
  return bounds;
}

StatStatements::StatStatements(size_t capacity)
    : capacity_(std::max<size_t>(capacity, 1)) {}

void StatStatements::Record(const StatementSample& sample) {
  std::string normalized = NormalizeSql(sample.sql);
  const uint64_t fingerprint = Fnv1a64(normalized);
  const Key key{fingerprint, sample.plan_hash};

  MutexLock lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    if (entries_.size() >= capacity_) {
      // Evict the least-recently-used entry (list tail) — counted, so
      // exporters can tell a quiet workload from a churning one.
      const StatementStats& victim = entries_.back();
      index_.erase(Key{victim.fingerprint, victim.plan_hash});
      entries_.pop_back();
      evicted_++;
    }
    StatementStats fresh;
    fresh.query = std::move(normalized);
    fresh.fingerprint = fingerprint;
    fresh.plan_hash = sample.plan_hash;
    fresh.latency_buckets.assign(LatencyBounds().size() + 1, 0);
    fresh.min_seconds = sample.latency_seconds;
    fresh.max_seconds = sample.latency_seconds;
    entries_.push_front(std::move(fresh));
    it = index_.emplace(key, entries_.begin()).first;
  } else if (it->second != entries_.begin()) {
    entries_.splice(entries_.begin(), entries_, it->second);  // mark MRU
  }

  StatementStats& entry = *it->second;
  entry.calls++;
  entry.rows += sample.rows;
  entry.total_seconds += sample.latency_seconds;
  entry.total_io_seconds += sample.io_seconds;
  entry.min_seconds = std::min(entry.min_seconds, sample.latency_seconds);
  entry.max_seconds = std::max(entry.max_seconds, sample.latency_seconds);
  AddIo(&entry.io, sample.io);

  const std::vector<double>& bounds = LatencyBounds();
  size_t bucket = bounds.size();
  for (size_t i = 0; i < bounds.size(); i++) {
    if (sample.latency_seconds <= bounds[i]) {
      bucket = i;
      break;
    }
  }
  entry.latency_buckets[bucket]++;

  if (!sample.residuals.empty()) {
    entry.instrumented_calls++;
    for (const OperatorResidual& r : sample.residuals) {
      OperatorClassStats& cls = entry.operator_classes[r.op_class];
      cls.operators++;
      cls.modeled_io_seconds += r.modeled_io_seconds;
      cls.measured_seconds += r.measured_seconds;
    }
  }
}

std::vector<StatementStats> StatStatements::Snapshot() const {
  MutexLock lock(mu_);
  return std::vector<StatementStats>(entries_.begin(), entries_.end());
}

size_t StatStatements::size() const {
  MutexLock lock(mu_);
  return entries_.size();
}

uint64_t StatStatements::evicted_entries() const {
  MutexLock lock(mu_);
  return evicted_;
}

void StatStatements::Reset() {
  MutexLock lock(mu_);
  entries_.clear();
  index_.clear();
  evicted_ = 0;
}

std::string StatStatements::ToJson() const {
  const std::vector<StatementStats> entries = Snapshot();
  uint64_t evicted;
  {
    MutexLock lock(mu_);
    evicted = evicted_;
  }

  uint64_t total_calls = 0, total_rows = 0;
  double total_seconds = 0, total_io_seconds = 0;
  IoStats total_io;
  for (const StatementStats& e : entries) {
    total_calls += e.calls;
    total_rows += e.rows;
    total_seconds += e.total_seconds;
    total_io_seconds += e.total_io_seconds;
    AddIo(&total_io, e.io);
  }

  JsonWriter w;
  w.BeginObject();
  w.Key("capacity").UInt(capacity_);
  w.Key("entries").UInt(entries.size());
  w.Key("evicted_entries").UInt(evicted);
  w.Key("latency_bounds").BeginArray();
  for (double b : LatencyBounds()) w.Double(b);
  w.EndArray();
  w.Key("totals").BeginObject();
  w.Key("calls").UInt(total_calls);
  w.Key("rows").UInt(total_rows);
  w.Key("total_seconds").Double(total_seconds);
  w.Key("total_io_seconds").Double(total_io_seconds);
  w.Key("io");
  AppendIoJson(total_io, &w);
  w.EndObject();
  w.Key("statements").BeginArray();
  for (const StatementStats& e : entries) {
    w.BeginObject();
    w.Key("fingerprint").String(HexHash(e.fingerprint));
    w.Key("plan_hash").String(HexHash(e.plan_hash));
    w.Key("query").String(e.query);
    w.Key("calls").UInt(e.calls);
    w.Key("rows").UInt(e.rows);
    w.Key("instrumented_calls").UInt(e.instrumented_calls);
    w.Key("total_seconds").Double(e.total_seconds);
    w.Key("mean_seconds").Double(e.MeanSeconds());
    w.Key("min_seconds").Double(e.min_seconds);
    w.Key("max_seconds").Double(e.max_seconds);
    w.Key("p95_seconds").Double(e.QuantileSeconds(0.95));
    w.Key("total_io_seconds").Double(e.total_io_seconds);
    w.Key("residual_seconds").Double(e.ResidualSeconds());
    w.Key("io");
    AppendIoJson(e.io, &w);
    w.Key("latency_buckets").BeginArray();
    for (uint64_t c : e.latency_buckets) w.UInt(c);
    w.EndArray();
    w.Key("operator_classes").BeginObject();
    for (const auto& [name, cls] : e.operator_classes) {
      w.Key(name).BeginObject();
      w.Key("operators").UInt(cls.operators);
      w.Key("modeled_io_seconds").Double(cls.modeled_io_seconds);
      w.Key("measured_seconds").Double(cls.measured_seconds);
      w.Key("residual_seconds").Double(cls.ResidualSeconds());
      w.EndObject();
    }
    w.EndObject();
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return std::move(w).str();
}

std::string StatStatements::ToPrometheusTopN(size_t n) const {
  std::vector<StatementStats> entries = Snapshot();
  if (entries.empty() || n == 0) return "";
  std::sort(entries.begin(), entries.end(),
            [](const StatementStats& a, const StatementStats& b) {
              return a.total_io_seconds > b.total_io_seconds;
            });
  if (entries.size() > n) entries.resize(n);

  auto labels = [](const StatementStats& e) {
    return "{fingerprint=\"" + HexHash(e.fingerprint) + "\",plan_hash=\"" +
           HexHash(e.plan_hash) + "\"}";
  };
  std::string out;
  out += "# TYPE elephant_stat_statements_calls_total counter\n";
  for (const StatementStats& e : entries) {
    out += "elephant_stat_statements_calls_total" + labels(e) + " " +
           std::to_string(e.calls) + "\n";
  }
  char buf[64];
  out += "# TYPE elephant_stat_statements_seconds_total counter\n";
  for (const StatementStats& e : entries) {
    std::snprintf(buf, sizeof(buf), "%.17g", e.total_seconds);
    out += "elephant_stat_statements_seconds_total" + labels(e) + " " + buf +
           "\n";
  }
  out += "# TYPE elephant_stat_statements_io_seconds_total counter\n";
  for (const StatementStats& e : entries) {
    std::snprintf(buf, sizeof(buf), "%.17g", e.total_io_seconds);
    out += "elephant_stat_statements_io_seconds_total" + labels(e) + " " +
           buf + "\n";
  }
  return out;
}

}  // namespace obs
}  // namespace elephant
