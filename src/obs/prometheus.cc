#include "obs/prometheus.h"

#include <cstdio>
#include <set>

namespace elephant {
namespace obs {

namespace {

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// True when the family name has not been emitted before (sanitization can
/// collide — "a.b" and "a_b" — and Prometheus rejects duplicate families, so
/// the second one is dropped rather than producing invalid output).
bool ClaimFamily(const std::string& name, std::set<std::string>* emitted) {
  return emitted->insert(name).second;
}

}  // namespace

std::string PrometheusName(const std::string& name) {
  std::string out = "elephant_";
  out.reserve(out.size() + name.size());
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

std::string ToPrometheusText(const MetricsRegistry& registry) {
  std::string out;
  std::set<std::string> emitted;

  constexpr const char* kTotal = "_total";
  for (const auto& [name, value] : registry.CounterValues()) {
    // Counters are conventionally suffixed `_total`; don't double it up for
    // registry names that already follow the convention.
    std::string fam = PrometheusName(name);
    const size_t n = fam.size();
    if (n < 6 || fam.compare(n - 6, 6, kTotal) != 0) fam += kTotal;
    if (!ClaimFamily(fam, &emitted)) continue;
    out += "# TYPE " + fam + " counter\n";
    out += fam + " " + std::to_string(value) + "\n";
  }

  for (const auto& [name, value] : registry.GaugeValues()) {
    const std::string fam = PrometheusName(name);
    if (!ClaimFamily(fam, &emitted)) continue;
    out += "# TYPE " + fam + " gauge\n";
    out += fam + " " + FormatDouble(value) + "\n";
  }

  for (const auto& [name, snap] : registry.HistogramValues()) {
    const std::string fam = PrometheusName(name);
    if (!ClaimFamily(fam, &emitted)) continue;
    out += "# TYPE " + fam + " histogram\n";
    uint64_t cumulative = 0;
    for (size_t i = 0; i < snap.bounds.size(); i++) {
      cumulative += snap.buckets[i];
      out += fam + "_bucket{le=\"" + FormatDouble(snap.bounds[i]) + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    out += fam + "_bucket{le=\"+Inf\"} " + std::to_string(snap.count) + "\n";
    out += fam + "_sum " + FormatDouble(snap.sum) + "\n";
    out += fam + "_count " + std::to_string(snap.count) + "\n";
  }

  return out;
}

}  // namespace obs
}  // namespace elephant
